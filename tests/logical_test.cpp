#include <gtest/gtest.h>

#include "collectives/logical.hpp"
#include "core/planner.hpp"
#include "polarfly/erq.hpp"

namespace pfar::collectives {
namespace {

graph::Graph line_graph(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

TEST(LogicalBandwidthTest, PhysicalEdgesReduceToAlgorithmOne) {
  // A logical tree whose every edge is physical behaves like Algorithm 1:
  // single chain tree on a line gets full bandwidth.
  const auto g = line_graph(4);
  const RoutedNetwork net(g);
  LogicalTree t{0, {-1, 0, 1, 2}};
  const auto bw = logical_tree_bandwidths(net, {t}, 2.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 2.0);
  EXPECT_EQ(bw.max_link_flows, 1);
}

TEST(LogicalBandwidthTest, MultiHopLogicalEdgeSharesLinks) {
  // Logical star at node 0 on a line 0-1-2-3: node 3's logical edge to 0
  // is routed 3->2->1->0, stacking flows on (1,0): flows there = 3
  // (from nodes 1, 2, 3) so each tree stream gets B/3.
  const auto g = line_graph(4);
  const RoutedNetwork net(g);
  LogicalTree star{0, {-1, 0, 0, 0}};
  const auto bw = logical_tree_bandwidths(net, {star}, 1.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 1.0 / 3.0);
  EXPECT_EQ(bw.max_link_flows, 3);
}

TEST(LogicalBandwidthTest, TwoTreesOpposingChainsShareDirections) {
  // Allreduce is bidirectional: chains rooted at opposite ends put one
  // tree's reduction and the other's broadcast on each directed link, so
  // both trees get B/2 — exactly Algorithm 1 on the shared undirected
  // edges (and the Lemma 7.8 situation).
  const auto g = line_graph(3);
  const RoutedNetwork net(g);
  LogicalTree a{0, {-1, 0, 1}};
  LogicalTree b{2, {1, 2, -1}};
  const auto bw = logical_tree_bandwidths(net, {a, b}, 1.0);
  EXPECT_DOUBLE_EQ(bw.per_tree[0], 0.5);
  EXPECT_DOUBLE_EQ(bw.per_tree[1], 0.5);
  EXPECT_EQ(bw.max_link_flows, 2);
}

TEST(LogicalBandwidthTest, PaperTreesMatchPhysicalAnalysis) {
  // The paper's low-depth trees, analyzed as logical trees, must give
  // exactly the Algorithm 1 reduction-direction result (q/2 aggregate),
  // since every logical edge is a physical link.
  const int q = 5;
  const auto plan = core::AllreducePlanner(q).build();
  const RoutedNetwork net(plan.topology());
  std::vector<LogicalTree> logical;
  for (const auto& t : plan.trees()) {
    logical.push_back(LogicalTree{t.root(), t.parents()});
  }
  const auto bw = logical_tree_bandwidths(net, logical, 1.0);
  EXPECT_NEAR(bw.aggregate, q / 2.0, 1e-9);
  EXPECT_LE(bw.max_link_flows, 2);
}

TEST(LogicalBandwidthTest, RandomLogicalTreesLoseBandwidth) {
  const int q = 7;
  const auto plan = core::AllreducePlanner(q).build();
  const RoutedNetwork net(plan.topology());
  util::Rng rng(5);
  const auto logical =
      random_logical_trees(plan.num_nodes(), q, q + 1, rng);
  const auto bw = logical_tree_bandwidths(net, logical, 1.0);
  // Oblivious routing stacks many flows on some link; must be well below
  // the physical construction's q/2.
  EXPECT_LT(bw.aggregate, plan.aggregate_bandwidth());
  EXPECT_GT(bw.max_link_flows, 2);
}

TEST(RandomLogicalTreesTest, WellFormed) {
  util::Rng rng(9);
  const auto trees = random_logical_trees(20, 4, 3, rng);
  ASSERT_EQ(trees.size(), 4u);
  for (const auto& t : trees) {
    int roots = 0;
    std::vector<int> children(20, 0);
    for (int v = 0; v < 20; ++v) {
      if (t.parent[static_cast<std::size_t>(v)] == -1) {
        ++roots;
        EXPECT_EQ(v, t.root);
      } else {
        EXPECT_GE(t.parent[static_cast<std::size_t>(v)], 0);
        EXPECT_LT(t.parent[static_cast<std::size_t>(v)], 20);
        ++children[static_cast<std::size_t>(t.parent[static_cast<std::size_t>(v)])];
      }
    }
    EXPECT_EQ(roots, 1);
    for (int v = 0; v < 20; ++v) EXPECT_LE(children[static_cast<std::size_t>(v)], 3);  // arity bound
  }
  EXPECT_THROW(random_logical_trees(0, 1, 1, rng), std::invalid_argument);
}

TEST(LogicalDepthTest, HopWeightedDepth) {
  // Line 0-1-2-3, logical chain 0<-1<-3 (skipping 2): edge (3,1) routes
  // over 2 hops, total depth 3.
  const auto g = line_graph(4);
  const RoutedNetwork net(g);
  LogicalTree t{0, {-1, 0, 1, 1}};
  EXPECT_EQ(logical_depth(net, t), 3);
  // Physical chain: depth = 3 hops as well.
  LogicalTree chain{0, {-1, 0, 1, 2}};
  EXPECT_EQ(logical_depth(net, chain), 3);
}

}  // namespace
}  // namespace pfar::collectives
