#include <gtest/gtest.h>

#include <algorithm>

#include "singer/difference_set.hpp"
#include "singer/singer_graph.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {
namespace {

TEST(DifferenceSetTest, PaperValuesForQ3) {
  // Figure 2a: D = {0, 1, 3, 9} over Z_13.
  const DifferenceSet d = build_difference_set(3);
  EXPECT_EQ(d.n, 13);
  EXPECT_EQ(d.elements, (std::vector<long long>{0, 1, 3, 9}));
}

TEST(DifferenceSetTest, PaperValuesForQ4) {
  // Figure 2b: D = {0, 1, 4, 14, 16} over Z_21.
  const DifferenceSet d = build_difference_set(4);
  EXPECT_EQ(d.n, 21);
  EXPECT_EQ(d.elements, (std::vector<long long>{0, 1, 4, 14, 16}));
}

TEST(DifferenceSetTest, PaperReflectionPointsQ3) {
  // Figure 2a: reflection points (quadrics) {0, 7, 8, 11}.
  const DifferenceSet d = build_difference_set(3);
  EXPECT_EQ(reflection_points(d), (std::vector<long long>{0, 7, 8, 11}));
}

TEST(DifferenceSetTest, PaperReflectionPointsQ4) {
  // Figure 2b: reflection points {0, 2, 7, 8, 11}.
  const DifferenceSet d = build_difference_set(4);
  EXPECT_EQ(reflection_points(d), (std::vector<long long>{0, 2, 7, 8, 11}));
}

class DifferenceSetInvariants : public ::testing::TestWithParam<int> {};

TEST_P(DifferenceSetInvariants, DefinitionHolds) {
  const int q = GetParam();
  const DifferenceSet d = build_difference_set(q);
  EXPECT_EQ(static_cast<int>(d.elements.size()), q + 1);
  EXPECT_EQ(d.n, static_cast<long long>(q) * q + q + 1);
  EXPECT_TRUE(is_valid_difference_set(d.elements, d.n));
}

TEST_P(DifferenceSetInvariants, ReflectionPointsAreHalvedElements) {
  // Corollary 6.8: w = 2^{-1} d_i; doubling a reflection point lands in D.
  const int q = GetParam();
  const DifferenceSet d = build_difference_set(q);
  const auto refl = reflection_points(d);
  EXPECT_EQ(refl.size(), d.elements.size());
  for (long long r : refl) {
    const long long doubled = (2 * r) % d.n;
    EXPECT_TRUE(std::binary_search(d.elements.begin(), d.elements.end(),
                                   doubled));
  }
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, DifferenceSetInvariants,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           17, 19, 23, 25, 27));

TEST(DifferenceSetTest, ValidatorRejectsBadSets) {
  EXPECT_FALSE(is_valid_difference_set({0, 1, 2, 3}, 13));   // repeats diff 1
  EXPECT_FALSE(is_valid_difference_set({0, 1, 3}, 13));      // too small
  EXPECT_TRUE(is_valid_difference_set({0, 1, 3, 9}, 13));
  // Translation invariance: D + c is also a difference set.
  EXPECT_TRUE(is_valid_difference_set({5, 6, 8, 1}, 13));
}

class SingerGraphInvariants : public ::testing::TestWithParam<int> {};

TEST_P(SingerGraphInvariants, MatchesErqCounts) {
  const int q = GetParam();
  const SingerGraph s(q);
  const long long n = s.n();
  EXPECT_EQ(n, static_cast<long long>(q) * q + q + 1);
  EXPECT_EQ(s.graph().num_vertices(), n);
  EXPECT_EQ(s.graph().num_edges(), q * (q + 1) * (q + 1) / 2);
  // Reflection points (quadrics) have degree q, the rest q+1.
  for (int v = 0; v < n; ++v) {
    EXPECT_EQ(s.graph().degree(v), s.is_reflection_point(v) ? q : q + 1);
  }
  EXPECT_EQ(static_cast<int>(s.reflection().size()), q + 1);
}

TEST_P(SingerGraphInvariants, DiameterTwoAndUniqueTwoPaths) {
  // The ER_q invariants (Theorem 6.1) must hold for the isomorphic Singer
  // construction as well.
  const int q = GetParam();
  const SingerGraph s(q);
  if (s.n() > 400) GTEST_SKIP();
  EXPECT_EQ(s.graph().diameter(), 2);
  for (int u = 0; u < s.n(); ++u) {
    for (int v = u + 1; v < s.n(); ++v) {
      EXPECT_LE(s.graph().common_neighbor_count(u, v), 1);
    }
  }
}

TEST_P(SingerGraphInvariants, EdgeSumsLieInDifferenceSet) {
  const int q = GetParam();
  const SingerGraph s(q);
  const auto& d = s.difference_set().elements;
  for (const auto& e : s.graph().edges()) {
    EXPECT_TRUE(std::binary_search(d.begin(), d.end(), s.edge_sum(e.u, e.v)));
  }
}

TEST_P(SingerGraphInvariants, ColorClassesPartitionEdges) {
  // Every edge has exactly one color; color c covers (N-1)/2 edges if c is
  // not twice a reflection point... simpler exact check: each color class
  // has (N-1)/2 edges when the self-loop vertex is excluded, and the
  // classes partition all q(q+1)^2/2 edges.
  const int q = GetParam();
  const SingerGraph s(q);
  const long long n = s.n();
  std::vector<long long> count;
  for (long long d : s.difference_set().elements) {
    long long c = 0;
    for (const auto& e : s.graph().edges()) {
      if (s.edge_sum(e.u, e.v) == d) ++c;
    }
    count.push_back(c);
    // Pairs (i, j), i != j, with i+j = d mod N: (N-1)/2 unordered pairs.
    EXPECT_EQ(c, (n - 1) / 2) << "color " << d;
  }
  long long total = 0;
  for (long long c : count) total += c;
  EXPECT_EQ(total, s.graph().num_edges());
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, SingerGraphInvariants,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13));

}  // namespace
}  // namespace pfar::singer
