// Randomized cross-validation of the graph substrate against brute-force
// reference implementations on small random graphs, plus property checks
// on the performance model and host algorithms over randomized parameters,
// plus seeded random fault scripts against the resilient collective driver.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "adapt/controller.hpp"
#include "collectives/host_allreduce.hpp"
#include "collectives/innetwork.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "graph/graph.hpp"
#include "graph/matching.hpp"
#include "model/congestion_model.hpp"
#include "simnet/allreduce_sim.hpp"
#include "util/contracts.hpp"
#include "util/numeric.hpp"
#include "util/rng.hpp"

namespace pfar {
namespace {

graph::Graph random_graph(int n, double p, util::Rng& rng) {
  graph::Graph g(n);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.next_double() < p) g.add_edge(i, j);
    }
  }
  g.finalize();
  return g;
}

// Exponential-time exact maximum matching for tiny graphs.
int brute_force_matching(const graph::Graph& g) {
  const auto& edges = g.edges();
  const int m = static_cast<int>(edges.size());
  int best = 0;
  // Iterate subsets of edges (m <= ~16).
  for (int mask = 0; mask < (1 << m); ++mask) {
    if (__builtin_popcount(static_cast<unsigned>(mask)) <= best) continue;
    std::vector<char> used(static_cast<std::size_t>(g.num_vertices()), 0);
    bool ok = true;
    for (int e = 0; e < m && ok; ++e) {
      if (!(mask & (1 << e))) continue;
      if (used[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].u)] ||
          used[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].v)]) {
        ok = false;
      } else {
        used[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].u)] =
            used[static_cast<std::size_t>(edges[static_cast<std::size_t>(e)].v)] = 1;
      }
    }
    if (ok) best = __builtin_popcount(static_cast<unsigned>(mask));
  }
  return best;
}

TEST(FuzzMatching, BlossomMatchesBruteForce) {
  util::Rng rng(101);
  for (int iter = 0; iter < 40; ++iter) {
    // Keep edge count <= 16 for the brute force.
    graph::Graph g = random_graph(7, 0.35, rng);
    if (g.num_edges() > 16) continue;
    const auto mate = graph::maximum_matching(g);
    int size = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      if (mate[static_cast<std::size_t>(v)] > v) ++size;
    }
    EXPECT_EQ(size, brute_force_matching(g)) << "iter " << iter;
  }
}

TEST(FuzzGraph, BfsMatchesFloydWarshall) {
  util::Rng rng(7);
  for (int iter = 0; iter < 20; ++iter) {
    graph::Graph g = random_graph(12, 0.3, rng);
    const int n = g.num_vertices();
    // Floyd-Warshall reference.
    constexpr int kInf = 1 << 20;
    std::vector<int> dist(static_cast<std::size_t>(n * n), kInf);
    for (int v = 0; v < n; ++v) dist[static_cast<std::size_t>(v * n + v)] = 0;
    for (const auto& e : g.edges()) {
      dist[static_cast<std::size_t>(e.u * n + e.v)] = dist[static_cast<std::size_t>(e.v * n + e.u)] = 1;
    }
    for (int k = 0; k < n; ++k) {
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < n; ++j) {
          dist[static_cast<std::size_t>(i * n + j)] = std::min(dist[static_cast<std::size_t>(i * n + j)],
                                     dist[static_cast<std::size_t>(i * n + k)] + dist[static_cast<std::size_t>(k * n + j)]);
        }
      }
    }
    for (int src = 0; src < n; ++src) {
      const auto bfs = g.bfs_distances(src);
      for (int v = 0; v < n; ++v) {
        const int expected = dist[static_cast<std::size_t>(src * n + v)] >= kInf ? -1 : dist[static_cast<std::size_t>(src * n + v)];
        EXPECT_EQ(bfs[static_cast<std::size_t>(v)], expected);
      }
    }
  }
}

TEST(FuzzModel, AlgorithmOneIsOrderIndependentAndConservative) {
  // Random spanning-tree subsets of random connected graphs: Algorithm 1
  // must (a) never overfill a link, (b) give every tree positive
  // bandwidth, (c) be invariant under tree permutation.
  util::Rng rng(55);
  for (int iter = 0; iter < 15; ++iter) {
    graph::Graph g = random_graph(10, 0.5, rng);
    if (!g.is_connected()) continue;
    // Build 3 random DFS-ish spanning trees (may overlap arbitrarily).
    std::vector<trees::SpanningTree> ts;
    for (int t = 0; t < 3; ++t) {
      std::vector<int> order(static_cast<std::size_t>(g.num_vertices()));
      std::iota(order.begin(), order.end(), 0);
      for (int i = g.num_vertices() - 1; i > 0; --i) {
        std::swap(order[static_cast<std::size_t>(i)], order[rng.next_below(static_cast<std::uint64_t>(i + 1))]);
      }
      const int root = order[0];
      std::vector<int> parent(static_cast<std::size_t>(g.num_vertices()), -1);
      std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
      seen[static_cast<std::size_t>(root)] = 1;
      std::vector<int> stack{root};
      while (!stack.empty()) {
        const int u = stack.back();
        stack.pop_back();
        for (int w : g.neighbors(u)) {
          if (!seen[static_cast<std::size_t>(w)]) {
            seen[static_cast<std::size_t>(w)] = 1;
            parent[static_cast<std::size_t>(w)] = u;
            stack.push_back(w);
          }
        }
      }
      ts.emplace_back(root, std::move(parent));
    }
    const auto bw = model::compute_tree_bandwidths(g, ts, 1.0);
    for (double b : bw.per_tree) {
      EXPECT_GT(b, 0.0);
      EXPECT_LE(b, 1.0 + 1e-9);
    }
    // Conservation per link.
    std::vector<double> load(static_cast<std::size_t>(g.num_edges()), 0.0);
    for (std::size_t t = 0; t < ts.size(); ++t) {
      for (const auto& e : ts[t].edges()) {
        load[static_cast<std::size_t>(g.edge_id(e.u, e.v))] += bw.per_tree[t];
      }
    }
    for (double l : load) EXPECT_LE(l, 1.0 + 1e-9);
    // Permutation invariance.
    std::vector<trees::SpanningTree> reversed(ts.rbegin(), ts.rend());
    const auto bw2 = model::compute_tree_bandwidths(g, reversed, 1.0);
    for (std::size_t t = 0; t < ts.size(); ++t) {
      EXPECT_NEAR(bw.per_tree[t], bw2.per_tree[ts.size() - 1 - t], 1e-9);
    }
  }
}

TEST(FuzzHostAlgorithms, RandomSizesStayCorrect) {
  util::Rng rng(77);
  for (int iter = 0; iter < 25; ++iter) {
    const int p = 2 + static_cast<int>(rng.next_below(30));
    const long long m = 1 + static_cast<long long>(rng.next_below(100));
    for (auto algo : {collectives::HostAlgorithm::kRing,
                      collectives::HostAlgorithm::kRecursiveDoubling,
                      collectives::HostAlgorithm::kHalvingDoubling}) {
      collectives::DataExecutor exec(p, m);
      collectives::run_host_allreduce(algo, p, m, exec);
      EXPECT_TRUE(exec.verify())
          << "algo " << static_cast<int>(algo) << " p=" << p << " m=" << m;
    }
  }
}

TEST(FuzzFaults, RandomRecoverableScriptsAlwaysEndCorrect) {
  // Seeded random fault scripts that leave the quadric connected (ER_q has
  // min degree q; dropping <= 2 links never disconnects it): the resilient
  // driver must always finish with every value exact, whatever the timing.
  const auto plan = core::AllreducePlanner(5).build();
  const auto& edges = plan.topology().edges();
  util::Rng rng(2024);
  for (int iter = 0; iter < 12; ++iter) {
    simnet::SimConfig cfg;
    cfg.progress_timeout = 400;
    cfg.max_cycles = 200000;
    const int downs = 1 + static_cast<int>(rng.next_below(2));
    for (int d = 0; d < downs; ++d) {
      const auto& e = edges[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(edges.size())))];
      const long long at = 50 + static_cast<long long>(rng.next_below(600));
      cfg.faults.events.push_back(
          {at, e.u, e.v, simnet::FaultType::kLinkDown});
      if (rng.next_below(2) == 0) {
        // Transient: link comes back later; losses (if any) still force a
        // replay, but the link is only excluded if it ate packets.
        cfg.faults.events.push_back(
            {at + 100 + static_cast<long long>(rng.next_below(400)), e.u,
             e.v, simnet::FaultType::kLinkUp});
      }
    }
    if (rng.next_below(3) == 0) {
      const auto& e = edges[static_cast<std::size_t>(
          rng.next_below(static_cast<std::uint64_t>(edges.size())))];
      cfg.faults.flaky_links.emplace_back(e.u, e.v);
      cfg.faults.flaky_seed = rng.next();
      cfg.faults.flaky_drop_permille =
          5 + static_cast<int>(rng.next_below(40));
    }
    const long long m = 500 + static_cast<long long>(rng.next_below(1500));

    collectives::ResilienceConfig rc;
    rc.max_retries = 6;
    const auto stats = collectives::run_resilient_allreduce(
        plan.topology(), plan.trees(), m, cfg, rc);
    EXPECT_TRUE(stats.recovered) << "iter " << iter;
    EXPECT_TRUE(stats.values_correct) << "iter " << iter;
    EXPECT_LE(stats.attempts, 1 + rc.max_retries) << "iter " << iter;
  }
}

TEST(FuzzFaults, DisconnectingScriptFailsLoudlyAndBounded) {
  // Cut every link of one vertex: no degraded plan exists. The driver must
  // fail with the structured contract error (a runtime_error when contracts
  // are compiled out), well before max_cycles — never hang.
  const auto plan = core::AllreducePlanner(5).build();
  const graph::Graph& g = plan.topology();
  util::Rng rng(4096);
  for (int iter = 0; iter < 3; ++iter) {
    const int victim =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(
            g.num_vertices())));
    simnet::SimConfig cfg;
    cfg.progress_timeout = 400;
    cfg.max_cycles = 100000;
    for (int w : g.neighbors(victim)) {
      cfg.faults.events.push_back(
          {100, victim, w, simnet::FaultType::kLinkDown});
    }
    const auto run = [&] {
      static_cast<void>(collectives::run_resilient_allreduce(
          g, plan.trees(), 800, cfg));
    };
#if PFAR_CHECKS_LEVEL >= 1
    pfar::util::contracts::ScopedThrowHandler guard;
    try {
      run();
      FAIL() << "unrecoverable script did not fail, iter " << iter;
    } catch (const pfar::util::contracts::ContractViolation& v) {
      EXPECT_EQ(v.kind(), "REQUIRE") << "iter " << iter;
      EXPECT_NE(std::string(v.what()).find("unrecoverable"),
                std::string::npos)
          << v.what();
    }
#else
    EXPECT_THROW(run(), std::runtime_error) << "iter " << iter;
#endif
  }
}

TEST(FuzzFaults, UndetectedLossDeadlocksInsteadOfHanging) {
  // Detection disabled (progress_timeout == 0): a lost packet must surface
  // as the simulator's deadlock exception at stall_limit, not as a hang or
  // a silent wrong answer.
  const auto plan = core::AllreducePlanner(5).build();
  const auto& tree0 = plan.trees()[0];
  int v = 0;
  while (tree0.parents()[static_cast<std::size_t>(v)] < 0) ++v;
  simnet::SimConfig cfg;
  cfg.stall_limit = 2000;
  cfg.faults.events.push_back(
      {200, v, tree0.parents()[static_cast<std::size_t>(v)],
       simnet::FaultType::kLinkDown});
  for (const auto engine :
       {simnet::SimEngine::kFastForward, simnet::SimEngine::kReference}) {
    cfg.engine = engine;
    simnet::AllreduceSimulator sim(
        plan.topology(), collectives::to_embeddings(plan.trees()), cfg);
    EXPECT_THROW(static_cast<void>(sim.run(plan.split(1000))),
                 std::runtime_error);
  }
}

TEST(FuzzApportion, AlwaysSumsAndRespectsMonotonicity) {
  util::Rng rng(31);
  for (int iter = 0; iter < 50; ++iter) {
    const int k = 1 + static_cast<int>(rng.next_below(8));
    std::vector<double> weights(static_cast<std::size_t>(k));
    for (auto& w : weights) w = rng.next_double() + 0.01;
    const long long total = static_cast<long long>(rng.next_below(100000));
    const auto split = util::apportion(total, weights);
    EXPECT_EQ(std::accumulate(split.begin(), split.end(), 0LL), total);
    const double sum =
        std::accumulate(weights.begin(), weights.end(), 0.0);
    for (int i = 0; i < k; ++i) {
      // Largest-remainder stays within 1 of the exact quota.
      const double quota =
          static_cast<double>(total) * weights[static_cast<std::size_t>(i)] / sum;
      EXPECT_GE(split[static_cast<std::size_t>(i)], static_cast<long long>(quota) - 1);
      EXPECT_LE(split[static_cast<std::size_t>(i)], static_cast<long long>(quota) + 1);
    }
  }
}

// --- Congestion controller properties (docs/congestion_adaptation.md) -----

// Randomized background traffic against the full control loop. Three
// properties must hold for every seed/pattern/load draw:
//   1. the re-weighted split the adaptive run used sums to exactly m and
//      matches optimal_split over the adapted bandwidths;
//   2. every tree in the adapted plan is a spanning tree of the topology,
//      and a plan whose original trees were edge-disjoint stays
//      edge-disjoint after re-planning;
//   3. the adaptive run's measured bandwidth is never worse than the
//      static run's beyond a pinned tolerance (the accept/reject gate in
//      adapt_plan commits a re-plan only when the capacitated model says
//      it strictly wins).
TEST(FuzzAdapt, ControllerPropertiesUnderRandomBackground) {
  // Simulated bandwidth is not exactly the capacitated model's objective,
  // so allow the adaptive run this much slack vs static before failing.
  constexpr double kTolerance = 0.02;
  util::Rng rng(53);
  const simnet::TrafficPattern patterns[] = {
      simnet::TrafficPattern::kUniform, simnet::TrafficPattern::kPermutation,
      simnet::TrafficPattern::kHotspot};
  for (int iter = 0; iter < 12; ++iter) {
    const int q = (iter % 2 == 0) ? 7 : 5;
    const auto sol = (iter % 4 < 2) ? core::Solution::kLowDepth
                                    : core::Solution::kEdgeDisjoint;
    const auto plan = core::AllreducePlanner(q).solution(sol).build();
    const bool originally_disjoint =
        trees::edge_disjoint(plan.topology(), plan.trees());

    simnet::SimConfig cfg;
    cfg.background.pattern = patterns[rng.next_below(3)];
    cfg.background.load = 0.1 + 0.5 * rng.next_double();
    cfg.background.seed = rng.next();
    cfg.background.hotspot_fraction = 0.1 + 0.3 * rng.next_double();
    const long long m = 4000 + static_cast<long long>(rng.next_below(8000));

    const auto res = adapt::run_adaptive_allreduce(
        plan.topology(), plan.trees(), m, cfg, {}, /*compare_static=*/true);

    // Property 1: split integrity.
    EXPECT_EQ(std::accumulate(res.adaptive.split.begin(),
                              res.adaptive.split.end(), 0LL),
              m)
        << "iter " << iter;
    EXPECT_EQ(res.adaptive.split,
              model::optimal_split(m, res.plan.bandwidths))
        << "iter " << iter;
    for (long long s : res.adaptive.split) EXPECT_GE(s, 0) << "iter " << iter;

    // Property 2: structural validity of the adapted plan
    // (pfar_audit-style: spanning + disjointness preserved).
    ASSERT_EQ(res.plan.trees.size(), plan.trees().size()) << "iter " << iter;
    for (const auto& tree : res.plan.trees) {
      EXPECT_TRUE(tree.is_spanning_tree_of(plan.topology()))
          << "iter " << iter;
    }
    if (originally_disjoint) {
      EXPECT_TRUE(trees::edge_disjoint(plan.topology(), res.plan.trees))
          << "iter " << iter;
    }

    // Property 3: never meaningfully worse than static.
    ASSERT_TRUE(res.compared) << "iter " << iter;
    EXPECT_TRUE(res.adaptive.sim.values_correct) << "iter " << iter;
    EXPECT_TRUE(res.static_run.sim.values_correct) << "iter " << iter;
    EXPECT_GE(res.adaptive.sim.aggregate_bandwidth,
              res.static_run.sim.aggregate_bandwidth * (1.0 - kTolerance))
        << "iter " << iter << " pattern "
        << static_cast<int>(cfg.background.pattern) << " load "
        << cfg.background.load;
  }
}

}  // namespace
}  // namespace pfar
