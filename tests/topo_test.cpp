#include <gtest/gtest.h>

#include "topo/topologies.hpp"
#include "trees/packing.hpp"
#include "trees/spanning_tree.hpp"

namespace pfar::topo {
namespace {

TEST(TorusTest, TwoDimensional) {
  const auto g = torus({4, 4});
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);  // 2 links per node
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.diameter(), 4);  // 2 + 2
  EXPECT_TRUE(g.is_connected());
}

TEST(TorusTest, ThreeDimensional) {
  const auto g = torus({3, 3, 3});
  EXPECT_EQ(g.num_vertices(), 27);
  EXPECT_EQ(g.max_degree(), 6);
  EXPECT_EQ(g.diameter(), 3);
}

TEST(TorusTest, DimTwoAvoidsDuplicateWrap) {
  // With dims[i] == 2, wrap would duplicate the mesh edge; generator must
  // fall back to single links (degree 1 in that axis).
  const auto g = torus({2, 4});
  EXPECT_EQ(g.num_vertices(), 8);
  EXPECT_EQ(g.max_degree(), 3);  // 1 (axis of size 2) + 2 (ring of 4)
  EXPECT_TRUE(g.is_connected());
}

TEST(MeshTest, NoWraparound) {
  const auto g = mesh({4, 4});
  EXPECT_EQ(g.num_edges(), 24);  // 2*4*3
  EXPECT_EQ(g.diameter(), 6);
  EXPECT_EQ(g.min_degree(), 2);  // corners
}

TEST(HypercubeTest, Structure) {
  const auto g = hypercube(4);
  EXPECT_EQ(g.num_vertices(), 16);
  EXPECT_EQ(g.num_edges(), 32);  // n*d/2
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.diameter(), 4);
  EXPECT_THROW(hypercube(0), std::invalid_argument);
}

TEST(HyperXTest, FullyConnectedAxes) {
  const auto g = hyperx({3, 4});
  EXPECT_EQ(g.num_vertices(), 12);
  // Each node: (3-1) + (4-1) = 5 links.
  EXPECT_EQ(g.max_degree(), 5);
  EXPECT_EQ(g.min_degree(), 5);
  EXPECT_EQ(g.diameter(), 2);  // one hop per axis
  EXPECT_EQ(g.num_edges(), 12 * 5 / 2);
}

class SlimFlyTest : public ::testing::TestWithParam<int> {};

TEST_P(SlimFlyTest, MmsInvariants) {
  const int q = GetParam();
  const auto g = slimfly(q);
  EXPECT_EQ(g.num_vertices(), 2 * q * q);
  // Regular of degree (3q-1)/2 for q == 1 mod 4.
  EXPECT_EQ(g.max_degree(), (3 * q - 1) / 2);
  EXPECT_EQ(g.min_degree(), (3 * q - 1) / 2);
  EXPECT_EQ(g.diameter(), 2);
  EXPECT_TRUE(g.is_connected());
}

INSTANTIATE_TEST_SUITE_P(QCongruentOneModFour, SlimFlyTest,
                         ::testing::Values(5, 9, 13, 17));

TEST(SlimFlyTest, RejectsInvalidQ) {
  EXPECT_THROW(slimfly(7), std::invalid_argument);   // 7 % 4 == 3
  EXPECT_THROW(slimfly(6), std::invalid_argument);   // not a prime power
  EXPECT_THROW(slimfly(4), std::invalid_argument);   // 4 % 4 == 0
}

TEST(SlimFlyTest, ScalesMoreNodesPerRadixThanPolarFlyNeeds) {
  // MMS graphs hold 2q^2 nodes at radix (3q-1)/2 — the scaling-efficiency
  // comparison the PolarFly paper makes; both beat tori by orders of
  // magnitude at diameter 2.
  const auto sf = slimfly(5);   // radix 7, 50 nodes
  EXPECT_GT(sf.num_vertices(), 36);  // torus at radix 4 with diameter 4...
}

TEST(CompleteTest, Kn) {
  const auto g = complete(6);
  EXPECT_EQ(g.num_edges(), 15);
  EXPECT_EQ(g.diameter(), 1);
}

TEST(PackingBoundTest, Formulas) {
  EXPECT_EQ(tree_packing_bound(complete(6)), 3);       // 15/5
  EXPECT_EQ(tree_packing_bound(torus({4, 4})), 2);     // 32/15
  EXPECT_EQ(tree_packing_bound(hypercube(4)), 2);      // 32/15
  EXPECT_EQ(tree_packing_bound(hyperx({4, 4})), 3);    // 48/15
}

TEST(DescribeTest, Fields) {
  const auto s = describe("torus-4x4", torus({4, 4}));
  EXPECT_EQ(s.name, "torus-4x4");
  EXPECT_EQ(s.nodes, 16);
  EXPECT_EQ(s.edges, 32);
  EXPECT_EQ(s.radix, 4);
  EXPECT_EQ(s.diameter, 4);
  EXPECT_EQ(s.packing_bound, 2);
}

class GreedyPacking : public ::testing::TestWithParam<int> {};

TEST(GreedyPackingTest, TreesAreDisjointAndSpanning) {
  for (const auto& g : {complete(8), torus({4, 4}), hypercube(4),
                        hyperx({3, 3})}) {
    const auto trees = trees::greedy_tree_packing(g);
    EXPECT_GE(static_cast<int>(trees.size()), 1);
    EXPECT_LE(static_cast<int>(trees.size()), tree_packing_bound(g));
    for (const auto& t : trees) {
      EXPECT_TRUE(t.is_spanning_tree_of(g));
    }
    EXPECT_TRUE(trees::edge_disjoint(g, trees));
  }
}

TEST(GreedyPackingTest, CompleteGraphAchievesBound) {
  // K_{2k} packs k edge-disjoint spanning trees; greedy finds them.
  const auto g = complete(8);
  const auto trees = trees::greedy_tree_packing(g);
  EXPECT_EQ(static_cast<int>(trees.size()), 4);
}

TEST(GreedyPackingTest, MaxTreesCap) {
  const auto g = complete(8);
  const auto trees = trees::greedy_tree_packing(g, 2);
  EXPECT_EQ(trees.size(), 2u);
}

TEST(GreedyPackingTest, SparseGraphGivesOneTree) {
  // A tree itself packs exactly one spanning tree.
  graph::Graph g(5);
  for (int i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  g.finalize();
  const auto trees = trees::greedy_tree_packing(g);
  EXPECT_EQ(trees.size(), 1u);
}

}  // namespace
}  // namespace pfar::topo
