// Tests for the congestion-adaptation layer (src/adapt) and the obsv
// probe-window plumbing it reads (docs/congestion_adaptation.md):
//
//  * capacitated Algorithm 1 degenerates bit-identically to the reference
//    implementation when every capacity scale is 1.0, and validates its
//    inputs;
//  * CongestionMap agrees whether built from a SimResult or from a
//    Recorder's metrics registry for the same run;
//  * obsv::extract_link_windows reproduces hand-computed busy%/queue-HWM
//    on a tiny scripted run, including the fault-cancel edge case;
//  * adapt_plan is the identity on a quiet network and produces valid,
//    never-predicted-worse plans on congested ones;
//  * run_adaptive_allreduce closes the loop end to end and emits the
//    adapt.* instrumentation.

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "adapt/controller.hpp"
#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "graph/graph.hpp"
#include "model/congestion_model.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "simnet/allreduce_sim.hpp"
#include "util/contracts.hpp"

namespace {

using namespace pfar;

// --- Capacitated Algorithm 1 ----------------------------------------------

TEST(CapacitatedAlg1, UnitScalesAreBitIdenticalToReference) {
  for (int q : {3, 5, 7}) {
    for (const auto sol :
         {core::Solution::kLowDepth, core::Solution::kEdgeDisjoint}) {
      const auto plan = core::AllreducePlanner(q).solution(sol).build();
      const std::vector<double> unit(
          static_cast<std::size_t>(plan.topology().num_edges()), 1.0);
      const auto ref = model::compute_tree_bandwidths_reference(
          plan.topology(), plan.trees(), 1.0);
      const auto cap = model::compute_tree_bandwidths_capacitated(
          plan.topology(), plan.trees(), 1.0, unit);
      ASSERT_EQ(cap.per_tree.size(), ref.per_tree.size());
      for (std::size_t i = 0; i < ref.per_tree.size(); ++i) {
        EXPECT_EQ(cap.per_tree[i], ref.per_tree[i]) << "q=" << q;  // exact
      }
      EXPECT_EQ(cap.aggregate, ref.aggregate) << "q=" << q;
    }
  }
}

TEST(CapacitatedAlg1, ScalingDownAnEdgeNeverRaisesAggregate) {
  const auto plan = core::AllreducePlanner(7).build();
  const std::vector<double> unit(
      static_cast<std::size_t>(plan.topology().num_edges()), 1.0);
  const auto base = model::compute_tree_bandwidths_capacitated(
      plan.topology(), plan.trees(), 1.0, unit);
  for (int e = 0; e < plan.topology().num_edges(); e += 7) {
    auto scale = unit;
    scale[static_cast<std::size_t>(e)] = 0.25;
    const auto scaled = model::compute_tree_bandwidths_capacitated(
        plan.topology(), plan.trees(), 1.0, scale);
    EXPECT_LE(scaled.aggregate, base.aggregate) << "edge " << e;
  }
}

TEST(CapacitatedAlg1, RejectsMalformedScales) {
  const auto plan = core::AllreducePlanner(3).build();
  const std::size_t edges =
      static_cast<std::size_t>(plan.topology().num_edges());
  EXPECT_THROW(model::compute_tree_bandwidths_capacitated(
                   plan.topology(), plan.trees(), 1.0,
                   std::vector<double>(edges - 1, 1.0)),
               std::invalid_argument);
  std::vector<double> zero(edges, 1.0);
  zero[0] = 0.0;  // open interval: a dead link is min_capacity_scale's job
  EXPECT_THROW(model::compute_tree_bandwidths_capacitated(
                   plan.topology(), plan.trees(), 1.0, zero),
               std::invalid_argument);
  std::vector<double> over(edges, 1.0);
  over[0] = 1.5;
  EXPECT_THROW(model::compute_tree_bandwidths_capacitated(
                   plan.topology(), plan.trees(), 1.0, over),
               std::invalid_argument);
}

// --- CongestionMap --------------------------------------------------------

TEST(CongestionMap, FromSimResultComputesOccupancies) {
  const auto plan = core::AllreducePlanner(5).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.background.load = 0.3;
  cfg.background.seed = 7;
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));

  const auto map =
      adapt::CongestionMap::from_sim_result(plan.topology(), result, 1);
  ASSERT_EQ(map.dlinks.size(),
            static_cast<std::size_t>(2 * plan.topology().num_edges()));
  EXPECT_EQ(map.cycles, result.cycles);
  bool any_bg = false;
  for (std::size_t d = 0; d < map.dlinks.size(); ++d) {
    const auto& link = map.dlinks[d];
    EXPECT_EQ(link.flits, result.link_flits[d]);
    EXPECT_EQ(link.bg_flits, result.link_bg_flits[d]);
    EXPECT_EQ(link.queue_hwm, result.link_queue_hwm[d]);
    const double denom = static_cast<double>(result.cycles);
    EXPECT_DOUBLE_EQ(
        link.busy, static_cast<double>(link.flits + link.bg_flits) / denom);
    EXPECT_DOUBLE_EQ(link.bg_busy, static_cast<double>(link.bg_flits) / denom);
    any_bg = any_bg || link.bg_flits > 0;
  }
  EXPECT_TRUE(any_bg);

  // Edge aggregates are the max over the two directions.
  for (int e = 0; e < plan.topology().num_edges(); ++e) {
    const std::size_t lo = static_cast<std::size_t>(2 * e);
    EXPECT_DOUBLE_EQ(map.edge_bg_busy(e),
                     std::max(map.dlinks[lo].bg_busy,
                              map.dlinks[lo + 1].bg_busy));
    EXPECT_EQ(map.edge_queue_hwm(e),
              std::max(map.dlinks[lo].queue_hwm,
                       map.dlinks[lo + 1].queue_hwm));
  }
}

#if PFAR_TRACE_LEVEL
TEST(CongestionMap, MetricsAndSimResultBuildersAgree) {
  const auto plan = core::AllreducePlanner(5).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kHotspot;
  cfg.background.load = 0.35;
  cfg.background.hotspot_fraction = 0.3;
  obsv::Recorder recorder;
  cfg.recorder = &recorder;
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));

  const auto from_sim =
      adapt::CongestionMap::from_sim_result(plan.topology(), result, 1);
  const auto from_metrics = adapt::CongestionMap::from_metrics(
      plan.topology(), recorder.metrics, 1);
  ASSERT_EQ(from_metrics.dlinks.size(), from_sim.dlinks.size());
  EXPECT_EQ(from_metrics.cycles, from_sim.cycles);
  for (std::size_t d = 0; d < from_sim.dlinks.size(); ++d) {
    EXPECT_EQ(from_metrics.dlinks[d].flits, from_sim.dlinks[d].flits) << d;
    EXPECT_EQ(from_metrics.dlinks[d].bg_flits, from_sim.dlinks[d].bg_flits)
        << d;
    EXPECT_EQ(from_metrics.dlinks[d].queue_hwm,
              from_sim.dlinks[d].queue_hwm)
        << d;
    EXPECT_DOUBLE_EQ(from_metrics.dlinks[d].bg_busy,
                     from_sim.dlinks[d].bg_busy)
        << d;
  }
}
#endif

// --- obsv probe-window extraction -----------------------------------------

#if PFAR_TRACE_LEVEL
// Hand-computable scenario: a 3-node path, one BFS tree rooted at an end.
// Allreduce of m single-flit elements moves exactly m flits on each of the
// four directed links (m up the reduce, m down the broadcast), so each
// link's busy_cycles counter must be exactly m and its flits exactly m.
TEST(LinkWindows, MatchHandComputedValuesOnTinyRun) {
  graph::Graph path(3);
  path.add_edge(0, 1);
  path.add_edge(1, 2);
  path.finalize();
  const auto tree = collectives::bfs_tree(path, 0);
  const long long m = 100;

  simnet::SimConfig cfg;
  obsv::Recorder recorder;
  cfg.recorder = &recorder;
  auto embeddings = collectives::to_embeddings({tree});
  simnet::AllreduceSimulator sim(path, embeddings, cfg);
  const auto result = sim.run({m});
  ASSERT_TRUE(result.values_correct);

  const auto window = obsv::extract_link_windows(recorder.metrics);
  EXPECT_EQ(window.cycles, result.cycles);
  ASSERT_EQ(window.links.size(), 4u);
  for (const auto& link : window.links) {
    EXPECT_EQ(link.flits, m) << link.name;
    EXPECT_EQ(link.busy_cycles, m) << link.name;
    EXPECT_EQ(link.bg_flits, 0) << link.name;
    EXPECT_EQ(link.dropped_flits, 0) << link.name;
    EXPECT_GE(link.queue_hwm, 1) << link.name;
    EXPECT_DOUBLE_EQ(link.busy_fraction,
                     static_cast<double>(m) /
                         static_cast<double>(result.cycles))
        << link.name;
  }
}

// Fault-cancel edge case on q=5: a permanent mid-run link failure cancels
// the affected trees. The extracted windows must stay internally
// consistent — busy_fraction capped at 1, every per-link busy count no
// larger than the window, and the downed link's traffic frozen at the
// fault, not extrapolated.
TEST(LinkWindows, FaultCancelRunStaysConsistent) {
  const auto plan = core::AllreducePlanner(5).build();
  // A link some tree actually uses, so the failure cancels work.
  const auto tree_edges = plan.trees()[0].edges();
  ASSERT_FALSE(tree_edges.empty());
  const graph::Edge victim = tree_edges.front();

  simnet::SimConfig cfg;
  cfg.progress_timeout = 1500;
  cfg.faults.events.push_back(
      {200, victim.u, victim.v, simnet::FaultType::kLinkDown});
  obsv::Recorder recorder;
  cfg.recorder = &recorder;
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));

  long long failures = 0;
  for (char failed : result.tree_failed) failures += failed != 0 ? 1 : 0;
  ASSERT_GT(failures, 0);  // the script really canceled trees

  const auto window = obsv::extract_link_windows(recorder.metrics);
  EXPECT_EQ(window.cycles, result.cycles);
  EXPECT_FALSE(window.links.empty());
  for (const auto& link : window.links) {
    EXPECT_GE(link.busy_cycles, 0) << link.name;
    EXPECT_LE(link.busy_cycles, window.cycles) << link.name;
    EXPECT_LE(link.busy_fraction, 1.0) << link.name;
    EXPECT_GE(link.flits, 0) << link.name;
  }
  // The canceled-run window still drives the controller without tripping
  // its contracts.
  const auto map = adapt::CongestionMap::from_metrics(plan.topology(),
                                                      recorder.metrics, 1);
  const auto adapted = adapt::adapt_plan(plan.topology(), plan.trees(), map);
  EXPECT_EQ(adapted.trees.size(), plan.trees().size());
}
#endif

// --- adapt_plan -----------------------------------------------------------

TEST(AdaptPlan, QuietNetworkIsTheIdentity) {
  const auto plan = core::AllreducePlanner(7).build();
  simnet::SimConfig cfg;  // no background traffic
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));
  const auto map =
      adapt::CongestionMap::from_sim_result(plan.topology(), result, 1);

  const auto adapted = adapt::adapt_plan(plan.topology(), plan.trees(), map);
  EXPECT_TRUE(adapted.hot_links.empty());
  EXPECT_TRUE(adapted.replanned.empty());
  for (double s : adapted.capacity_scale) EXPECT_EQ(s, 1.0);
  // Bit-identical to the reference Algorithm 1: the whole adaptation layer
  // vanishes when the network is quiet.
  const auto ref = model::compute_tree_bandwidths_reference(
      plan.topology(), plan.trees(), 1.0);
  ASSERT_EQ(adapted.bandwidths.per_tree.size(), ref.per_tree.size());
  for (std::size_t i = 0; i < ref.per_tree.size(); ++i) {
    EXPECT_EQ(adapted.bandwidths.per_tree[i], ref.per_tree[i]);
  }
  EXPECT_EQ(adapted.bandwidths.aggregate, ref.aggregate);
}

TEST(AdaptPlan, CongestedNetworkProducesValidNeverWorsePlan) {
  const auto plan = core::AllreducePlanner(7).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.background.load = 0.5;
  cfg.background.seed = 7;
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));
  const auto map =
      adapt::CongestionMap::from_sim_result(plan.topology(), result, 1);

  const auto adapted = adapt::adapt_plan(plan.topology(), plan.trees(), map);
  ASSERT_EQ(adapted.capacity_scale.size(),
            static_cast<std::size_t>(plan.topology().num_edges()));
  for (double s : adapted.capacity_scale) {
    EXPECT_GE(s, adapt::ControllerConfig{}.min_capacity_scale);
    EXPECT_LE(s, 1.0);
  }
  for (const auto& tree : adapted.trees) {
    EXPECT_TRUE(tree.is_spanning_tree_of(plan.topology()));
  }
  // The committed plan's capacitated bandwidth is never below the
  // re-weighted original's (the accept/reject gate).
  const auto reweighted = model::compute_tree_bandwidths_capacitated(
      plan.topology(), plan.trees(), 1.0, adapted.capacity_scale);
  EXPECT_GE(adapted.bandwidths.aggregate, reweighted.aggregate);
}

TEST(AdaptPlan, ReplanOffIsHonored) {
  const auto plan = core::AllreducePlanner(7).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.background.load = 0.5;
  cfg.background.seed = 7;
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  const auto result = sim.run(plan.split(2000));
  const auto map =
      adapt::CongestionMap::from_sim_result(plan.topology(), result, 1);

  adapt::ControllerConfig ctrl;
  ctrl.replan = false;
  const auto adapted =
      adapt::adapt_plan(plan.topology(), plan.trees(), map, ctrl);
  EXPECT_TRUE(adapted.replanned.empty());
  ASSERT_EQ(adapted.trees.size(), plan.trees().size());
  for (std::size_t t = 0; t < adapted.trees.size(); ++t) {
    EXPECT_EQ(adapted.trees[t].parents(), plan.trees()[t].parents());
  }
}

// --- run_adaptive_allreduce ------------------------------------------------

TEST(AdaptiveAllreduce, ClosesTheLoopEndToEnd) {
  const auto plan = core::AllreducePlanner(7).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.background.load = 0.5;
  cfg.background.seed = 7;
  const long long m = 20000;
  const auto res = adapt::run_adaptive_allreduce(plan.topology(),
                                                 plan.trees(), m, cfg, {},
                                                 /*compare_static=*/true);
  EXPECT_TRUE(res.compared);
  EXPECT_TRUE(res.adaptive.sim.values_correct);
  EXPECT_TRUE(res.static_run.sim.values_correct);
  EXPECT_EQ(res.adaptive.m, m);
  EXPECT_GT(res.probe.cycles, 0);
  EXPECT_GT(res.probe.background_flits, 0);
  // This configuration is the bench's headline point: adaptation wins big.
  EXPECT_GT(res.adaptive.sim.aggregate_bandwidth,
            res.static_run.sim.aggregate_bandwidth);
}

#if PFAR_TRACE_LEVEL
TEST(AdaptiveAllreduce, EmitsAdaptInstrumentation) {
  const auto plan = core::AllreducePlanner(7).build();
  simnet::SimConfig cfg;
  cfg.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.background.load = 0.5;
  cfg.background.seed = 7;
  obsv::Recorder recorder;
  cfg.recorder = &recorder;
  const auto res = adapt::run_adaptive_allreduce(plan.topology(),
                                                 plan.trees(), 4000, cfg);
  EXPECT_EQ(recorder.metrics.counter("adapt.probe_cycles"), res.probe.cycles);
  EXPECT_EQ(recorder.metrics.counter("adapt.hot_links"),
            static_cast<long long>(res.plan.hot_links.size()));
  EXPECT_EQ(recorder.metrics.counter("adapt.replanned_trees"),
            static_cast<long long>(res.plan.replanned.size()));

  // The adapt track's events land in the report's adaptation timeline.
  std::ostringstream trace_json, metrics_jsonl;
  recorder.trace.write_chrome_json(trace_json);
  recorder.metrics.write_jsonl(metrics_jsonl);
  const auto report =
      obsv::build_report(trace_json.str(), metrics_jsonl.str());
  EXPECT_FALSE(report.adapt.empty());
  std::ostringstream rendered;
  obsv::render_report(report, rendered);
  EXPECT_NE(rendered.str().find("congestion adaptation timeline"),
            std::string::npos);
}
#endif

}  // namespace
