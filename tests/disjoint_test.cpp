#include <gtest/gtest.h>

#include <set>

#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "util/numeric.hpp"

namespace pfar::singer {
namespace {

void expect_valid_disjoint_set(const DifferenceSet& d,
                               const DisjointHamiltonianSet& set) {
  // All paths Hamiltonian, pairwise element-disjoint pairs.
  std::set<long long> used_elements;
  for (const auto& [d0, d1] : set.pairs) {
    EXPECT_TRUE(used_elements.insert(d0).second);
    EXPECT_TRUE(used_elements.insert(d1).second);
    EXPECT_EQ(util::gcd_ll(d0 - d1, d.n), 1);
  }
  for (const auto& path : set.paths) {
    EXPECT_TRUE(path.hamiltonian);
  }
  // Pairwise edge-disjoint, checked explicitly on the vertex sequences.
  std::set<std::pair<long long, long long>> edges;
  for (const auto& path : set.paths) {
    for (std::size_t i = 1; i < path.vertices.size(); ++i) {
      long long a = path.vertices[i - 1], b = path.vertices[i];
      if (a > b) std::swap(a, b);
      EXPECT_TRUE(edges.emplace(a, b).second)
          << "shared edge " << a << "-" << b;
    }
  }
}

class DisjointSelection : public ::testing::TestWithParam<int> {};

TEST_P(DisjointSelection, MatchingAttainsUpperBound) {
  // Section 7.3: floor((q+1)/2) edge-disjoint Hamiltonian paths exist for
  // every prime power q < 128; the matching method must find them.
  const int q = GetParam();
  const DifferenceSet d = build_difference_set(q);
  const auto set = find_disjoint_hamiltonians(d);
  EXPECT_EQ(set.size(), disjoint_hamiltonian_upper_bound(q)) << "q=" << q;
  expect_valid_disjoint_set(d, set);
}

TEST_P(DisjointSelection, RandomMethodMatchesWithinThirtyAttempts) {
  // The paper: "We were able to find a maximum independent set ... within
  // 30 random instances" for all radixes.
  const int q = GetParam();
  const DifferenceSet d = build_difference_set(q);
  util::Rng rng(2023);
  const auto set = find_disjoint_hamiltonians_random(d, rng, 30);
  EXPECT_EQ(set.size(), disjoint_hamiltonian_upper_bound(q)) << "q=" << q;
  expect_valid_disjoint_set(d, set);
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, DisjointSelection,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           17, 19, 23, 25, 27, 29, 31, 32));

TEST(DisjointTest, UpperBoundFormula) {
  EXPECT_EQ(disjoint_hamiltonian_upper_bound(3), 2);
  EXPECT_EQ(disjoint_hamiltonian_upper_bound(4), 2);
  EXPECT_EQ(disjoint_hamiltonian_upper_bound(5), 3);
  EXPECT_EQ(disjoint_hamiltonian_upper_bound(11), 6);
  EXPECT_EQ(disjoint_hamiltonian_upper_bound(127), 64);
}

TEST(DisjointTest, OddQUsesAllElements) {
  // For odd q, q+1 elements pair off perfectly; the optimal set uses every
  // difference-set element exactly once.
  const DifferenceSet d = build_difference_set(11);
  const auto set = find_disjoint_hamiltonians(d);
  std::set<long long> used;
  for (const auto& [d0, d1] : set.pairs) {
    used.insert(d0);
    used.insert(d1);
  }
  EXPECT_EQ(used.size(), d.elements.size());
}

TEST(DisjointTest, Q4LeavesOneColorUnused) {
  // Figure 4b: for q = 4 the two disjoint Hamiltonian paths leave the
  // edges of one difference-set color unused.
  const DifferenceSet d = build_difference_set(4);
  const auto set = find_disjoint_hamiltonians(d);
  EXPECT_EQ(set.size(), 2);
  std::set<long long> used;
  for (const auto& [d0, d1] : set.pairs) {
    used.insert(d0);
    used.insert(d1);
  }
  EXPECT_EQ(used.size(), 4u);  // of 5 elements
}

TEST(DisjointTest, PathsCoverAllEdgesForOddQWhenOptimal) {
  // (q+1)/2 disjoint Hamiltonian paths of q(q+1) edges each use all
  // q(q+1)^2/2 edges of S_q: the embedding saturates the network.
  const int q = 7;
  const SingerGraph s(q);
  const auto set = find_disjoint_hamiltonians(s.difference_set());
  long long covered = 0;
  for (const auto& path : set.paths) covered += path.length();
  EXPECT_EQ(covered, s.graph().num_edges());
}

}  // namespace
}  // namespace pfar::singer
