// Round-trip, rejection and memoization tests for the plan serializer
// (core/serialize) and core::PlanCache: a reloaded plan must be exactly
// the plan that was stored (hex-float doubles round-trip bit-for-bit),
// and every corrupted, truncated, stale-version or misnamed payload must
// be rejected and rebuilt rather than trusted.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/plan_cache.hpp"
#include "core/planner.hpp"
#include "core/serialize.hpp"

namespace pfar::core {
namespace {

namespace fs = std::filesystem;

// Every observable of a plan, compared exactly — including doubles, which
// the %a hex-float encoding must round-trip bit-for-bit.
void expect_same_plan(const AllreducePlan& a, const AllreducePlan& b) {
  ASSERT_EQ(a.q(), b.q());
  ASSERT_EQ(a.solution(), b.solution());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.topology().num_edges(), b.topology().num_edges());
  for (int id = 0; id < a.topology().num_edges(); ++id) {
    EXPECT_EQ(a.topology().edge(id), b.topology().edge(id));
  }
  ASSERT_EQ(a.num_trees(), b.num_trees());
  for (int t = 0; t < a.num_trees(); ++t) {
    EXPECT_EQ(a.trees()[static_cast<std::size_t>(t)].root(), b.trees()[static_cast<std::size_t>(t)].root());
    EXPECT_EQ(a.trees()[static_cast<std::size_t>(t)].parents(), b.trees()[static_cast<std::size_t>(t)].parents());
  }
  EXPECT_EQ(a.aggregate_bandwidth(), b.aggregate_bandwidth());
  ASSERT_EQ(a.bandwidths().per_tree.size(), b.bandwidths().per_tree.size());
  for (std::size_t t = 0; t < a.bandwidths().per_tree.size(); ++t) {
    EXPECT_EQ(a.bandwidths().per_tree[t], b.bandwidths().per_tree[t]);
  }
}

// Rewrites one body line of a serialized plan and re-stamps the checksum,
// so the payload passes integrity but fails semantic validation.
std::string with_line_replaced(const std::string& text,
                               const std::string& from,
                               const std::string& to) {
  const auto cpos = text.rfind("checksum ");
  EXPECT_NE(cpos, std::string::npos);
  std::string body = text.substr(0, cpos);
  const auto lpos = body.find(from);
  EXPECT_NE(lpos, std::string::npos) << from;
  body.replace(lpos, from.size(), to);
  std::ostringstream cs;
  cs << "checksum " << std::hex << fnv1a64(body) << "\n";
  return body + cs.str();
}

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "pfar_plan_cache_test";
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(PlanSerializeTest, RoundTripIsExact) {
  for (const Solution s : {Solution::kLowDepth, Solution::kEdgeDisjoint,
                           Solution::kSingleTree}) {
    const AllreducePlan plan = AllreducePlanner(7).solution(s).build();
    const ParsedPlan back = parse_plan(serialize_plan(plan, 0));
    EXPECT_EQ(back.starter, 0);
    expect_same_plan(plan, back.plan);
  }
}

TEST(PlanSerializeTest, RoundTripKeepsStarter) {
  const AllreducePlan plan = AllreducePlanner(5).starter_quadric(2).build();
  const ParsedPlan back = parse_plan(serialize_plan(plan, 2));
  EXPECT_EQ(back.starter, 2);
  expect_same_plan(plan, back.plan);
}

TEST(PlanSerializeTest, RejectsEveryFlippedByte) {
  const AllreducePlan plan = AllreducePlanner(3).build();
  const std::string good = serialize_plan(plan, 0);
  ASSERT_NO_THROW(parse_plan(good));
  // Flip bytes across the payload (stride keeps the test fast); each
  // corruption must be caught — by the checksum for body bytes, by the
  // checksum-line parse for trailer bytes.
  for (std::size_t i = 0; i < good.size(); i += 7) {
    std::string bad = good;
    bad[i] ^= 0x01;
    EXPECT_THROW(parse_plan(bad), std::invalid_argument) << "byte " << i;
  }
}

TEST(PlanSerializeTest, RejectsTruncation) {
  const std::string good = serialize_plan(AllreducePlanner(3).build(), 0);
  // (Losing only the final newline keeps the payload intact and parseable;
  // every truncation that drops a data byte must throw.)
  for (const std::size_t keep :
       {good.size() - 2, good.size() / 2, std::size_t{10}, std::size_t{0}}) {
    EXPECT_THROW(parse_plan(good.substr(0, keep)), std::invalid_argument);
  }
}

TEST(PlanSerializeTest, RejectsMissingChecksum) {
  const std::string good = serialize_plan(AllreducePlanner(3).build(), 0);
  const std::string body = good.substr(0, good.rfind("checksum "));
  EXPECT_THROW(parse_plan(body), std::invalid_argument);
}

TEST(PlanSerializeTest, RejectsStaleBuilderVersion) {
  const std::string good = serialize_plan(AllreducePlanner(3).build(), 0);
  const std::string stale = with_line_replaced(
      good, std::string("builder ") + kBuilderVersion, "builder pfar-builder-0");
  try {
    parse_plan(stale);
    FAIL() << "stale builder version accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("builder version mismatch"),
              std::string::npos)
        << e.what();
  }
}

TEST(PlanSerializeTest, RejectsTreeEdgeNotInTopology) {
  // A re-stamped checksum is not enough: tree edges must exist in the
  // serialized topology.
  const AllreducePlan plan = AllreducePlanner(3).build();
  const std::string good = serialize_plan(plan, 0);
  // Vertex 0's parent in the first tree: rewrite it to a non-neighbor.
  const auto& t = plan.trees().front();
  int non_neighbor = -1;
  for (int v = 0; v < plan.num_nodes(); ++v) {
    if (v != 0 && !plan.topology().has_edge(0, v)) {
      non_neighbor = v;
      break;
    }
  }
  ASSERT_GE(non_neighbor, 0);
  std::ostringstream from, to;
  from << "tree " << t.root() << ' ' << t.parent(0);
  to << "tree " << t.root() << ' ' << non_neighbor;
  const std::string bad = with_line_replaced(good, from.str(), to.str());
  EXPECT_THROW(parse_plan(bad), std::invalid_argument);
}

TEST_F(PlanCacheTest, MemoryHitReturnsSameInstance) {
  PlanCache cache;
  const PlanKey key{7, Solution::kLowDepth, 0};
  const auto first = cache.get_or_build(key);
  const auto second = cache.get_or_build(key);
  EXPECT_EQ(first.get(), second.get());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.disk_hits, 0u);
  EXPECT_EQ(stats.stores, 0u);  // memory-only: nothing written
}

TEST_F(PlanCacheTest, CachedPlanMatchesDirectBuild) {
  PlanCache cache;
  for (const Solution s : {Solution::kLowDepth, Solution::kEdgeDisjoint}) {
    const auto cached = cache.get_or_build({7, s, 0});
    const AllreducePlan direct = AllreducePlanner(7).solution(s).build();
    expect_same_plan(direct, *cached);
  }
}

TEST_F(PlanCacheTest, DistinctKeysDistinctPlans) {
  PlanCache cache;
  const auto low = cache.get_or_build({5, Solution::kLowDepth, 0});
  const auto ham = cache.get_or_build({5, Solution::kEdgeDisjoint, 0});
  const auto st1 = cache.get_or_build({5, Solution::kLowDepth, 1});
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_NE(low.get(), ham.get());
  EXPECT_NE(low.get(), st1.get());
}

TEST_F(PlanCacheTest, LookupDoesNotBuild) {
  PlanCache cache;
  EXPECT_EQ(cache.lookup({5, Solution::kLowDepth, 0}), nullptr);
  cache.get_or_build({5, Solution::kLowDepth, 0});
  EXPECT_NE(cache.lookup({5, Solution::kLowDepth, 0}), nullptr);
}

TEST_F(PlanCacheTest, DiskRoundTripAcrossInstances) {
  const PlanKey key{7, Solution::kEdgeDisjoint, 0};
  {
    PlanCache cache(dir_.string());
    cache.get_or_build(key);
    const auto stats = cache.stats();
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.stores, 1u);
    EXPECT_TRUE(fs::exists(dir_ / PlanCache::file_name(key)));
  }
  // A fresh cache (new process, conceptually) must load from disk without
  // rebuilding — and the loaded plan matches a direct build exactly.
  PlanCache cache(dir_.string());
  const auto loaded = cache.get_or_build(key);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.disk_hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  expect_same_plan(
      AllreducePlanner(7).solution(Solution::kEdgeDisjoint).build(), *loaded);
  // clear() drops memory but keeps the disk entry.
  cache.clear();
  EXPECT_NE(cache.get_or_build(key), nullptr);
  EXPECT_EQ(cache.stats().disk_hits, 2u);
}

TEST_F(PlanCacheTest, CorruptedDiskEntryIsRebuilt) {
  const PlanKey key{5, Solution::kLowDepth, 0};
  {
    PlanCache cache(dir_.string());
    cache.get_or_build(key);
  }
  const fs::path file = dir_ / PlanCache::file_name(key);
  ASSERT_TRUE(fs::exists(file));
  {
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(30);
    f.put('#');  // corrupt one body byte -> checksum mismatch
  }
  PlanCache cache(dir_.string());
  const auto plan = cache.get_or_build(key);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);  // silently rebuilt
  expect_same_plan(AllreducePlanner(5).build(), *plan);
}

TEST_F(PlanCacheTest, MisnamedDiskEntryIsNotTrusted) {
  // A valid payload under the wrong key's filename (q=5 plan renamed to
  // the q=7 slot) must be rejected by the key re-validation and rebuilt.
  const PlanKey small{5, Solution::kLowDepth, 0};
  const PlanKey big{7, Solution::kLowDepth, 0};
  {
    PlanCache cache(dir_.string());
    cache.get_or_build(small);
  }
  fs::rename(dir_ / PlanCache::file_name(small),
             dir_ / PlanCache::file_name(big));
  PlanCache cache(dir_.string());
  const auto plan = cache.get_or_build(big);
  EXPECT_EQ(plan->q(), 7);
  EXPECT_EQ(cache.stats().disk_hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST_F(PlanCacheTest, FileNameEmbedsKeyAndBuilderVersion) {
  const std::string name =
      PlanCache::file_name({49, Solution::kEdgeDisjoint, 3});
  EXPECT_NE(name.find("49"), std::string::npos);
  EXPECT_NE(name.find(kBuilderVersion), std::string::npos);
  EXPECT_NE(name, PlanCache::file_name({49, Solution::kEdgeDisjoint, 4}));
  EXPECT_NE(name, PlanCache::file_name({49, Solution::kLowDepth, 3}));
}

TEST_F(PlanCacheTest, ThreadsParameterDoesNotChangeResult) {
  PlanCache a, b;
  for (const Solution s : {Solution::kLowDepth, Solution::kEdgeDisjoint}) {
    expect_same_plan(*a.get_or_build({9, s, 0}, 1),
                     *b.get_or_build({9, s, 0}, 3));
  }
}

// Drops an arbitrary file into the cache directory.
void plant_file(const fs::path& dir, const std::string& name,
                const std::string& contents = "x") {
  fs::create_directories(dir);
  std::ofstream(dir / name, std::ios::binary) << contents;
}

TEST_F(PlanCacheTest, ScanDiskSortsAndClassifies) {
  PlanCache cache(dir_.string());
  cache.get_or_build({5, Solution::kLowDepth, 0});  // one kCurrent entry
  const std::string current = PlanCache::file_name({5, Solution::kLowDepth, 0});
  // An entry written by an older builder (version suffix differs), an
  // orphaned write-then-rename temp file, and a file that is not ours.
  plant_file(dir_, "plan_q5_s0_st1_pfar-builder-0.pfar");
  plant_file(dir_, current + ".tmp");
  plant_file(dir_, "notes.txt");

  const auto entries = cache.scan_disk();
  ASSERT_EQ(entries.size(), 4u);
  // Sorted by filename regardless of creation/directory order.
  for (std::size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].file, entries[i].file);
  }
  for (const auto& e : entries) {
    if (e.file == current) {
      EXPECT_EQ(e.state, PlanCache::DiskEntry::State::kCurrent);
    } else if (e.file == "notes.txt") {
      EXPECT_EQ(e.state, PlanCache::DiskEntry::State::kForeign);
    } else {
      EXPECT_EQ(e.state, PlanCache::DiskEntry::State::kStale) << e.file;
    }
  }
}

TEST_F(PlanCacheTest, ScanDiskEmptyWhenMemoryOnlyOrDirMissing) {
  PlanCache memory_only;
  EXPECT_TRUE(memory_only.scan_disk().empty());
  PlanCache missing((dir_ / "never_created").string());
  EXPECT_TRUE(missing.scan_disk().empty());
}

TEST_F(PlanCacheTest, PurgeStaleRemovesOnlyStaleEntries) {
  const PlanKey key{5, Solution::kEdgeDisjoint, 0};
  PlanCache cache(dir_.string());
  cache.get_or_build(key);
  const std::string current = PlanCache::file_name(key);
  plant_file(dir_, "plan_q5_s1_st0_pfar-builder-0.pfar");  // old version
  plant_file(dir_, current + ".tmp");                      // orphaned temp
  plant_file(dir_, "notes.txt");                           // foreign

  EXPECT_EQ(cache.purge_stale(), 2);
  EXPECT_TRUE(fs::exists(dir_ / current));     // current survives
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"));  // foreign never touched
  EXPECT_FALSE(fs::exists(dir_ / "plan_q5_s1_st0_pfar-builder-0.pfar"));
  EXPECT_FALSE(fs::exists(dir_ / (current + ".tmp")));
  EXPECT_EQ(cache.purge_stale(), 0);  // idempotent once clean
  // The surviving current entry still loads.
  PlanCache fresh(dir_.string());
  EXPECT_NE(fresh.lookup(key), nullptr);
  EXPECT_EQ(fresh.stats().disk_hits, 1u);
}

TEST_F(PlanCacheTest, PurgeStaleOnMemoryOnlyCacheIsANoOp) {
  PlanCache cache;
  EXPECT_EQ(cache.purge_stale(), 0);
}

}  // namespace
}  // namespace pfar::core
