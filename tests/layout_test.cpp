#include <gtest/gtest.h>

#include <algorithm>

#include "polarfly/layout.hpp"

namespace pfar::polarfly {
namespace {

// Properties 1-3 of the PolarFly layout (Section 6.1.1), for odd prime
// powers q and multiple starter quadrics.
class LayoutProperties : public ::testing::TestWithParam<int> {};

TEST_P(LayoutProperties, EveryVertexInExactlyOneCluster) {
  const int q = GetParam();
  const PolarFly pf(q);
  const Layout layout = build_layout(pf);
  std::vector<int> membership(static_cast<std::size_t>(pf.n()), 0);
  for (int w : layout.quadric_cluster) ++membership[static_cast<std::size_t>(w)];
  for (const auto& cluster : layout.clusters) {
    for (int v : cluster) ++membership[static_cast<std::size_t>(v)];
  }
  for (int v = 0; v < pf.n(); ++v) {
    EXPECT_EQ(membership[static_cast<std::size_t>(v)], 1) << "vertex " << v;
  }
}

TEST_P(LayoutProperties, PropertyOneClusterContents) {
  const int q = GetParam();
  const PolarFly pf(q);
  const Layout layout = build_layout(pf);
  // (1) |W| = q+1 and every non-quadric cluster has q vertices.
  EXPECT_EQ(static_cast<int>(layout.quadric_cluster.size()), q + 1);
  EXPECT_EQ(static_cast<int>(layout.clusters.size()), q);
  for (const auto& cluster : layout.clusters) {
    EXPECT_EQ(static_cast<int>(cluster.size()), q);
  }
  // (2) no edges between quadrics.
  EXPECT_EQ(edges_within(pf.graph(), layout.quadric_cluster), 0);
  // (3) the center is adjacent to all other vertices in its cluster.
  for (std::size_t i = 0; i < layout.clusters.size(); ++i) {
    const int center = layout.centers[i];
    for (int v : layout.clusters[i]) {
      if (v != center) {
        EXPECT_TRUE(pf.graph().has_edge(center, v));
      }
    }
  }
}

TEST_P(LayoutProperties, PropertyTwoQuadricClusterConnectivity) {
  const int q = GetParam();
  const PolarFly pf(q);
  const Layout layout = build_layout(pf);
  const auto& g = pf.graph();
  for (std::size_t i = 0; i < layout.clusters.size(); ++i) {
    const auto& cluster = layout.clusters[i];
    // (1) q+1 edges between W and C_i.
    EXPECT_EQ(edges_between(g, layout.quadric_cluster, cluster), q + 1);
    // (2) every quadric is adjacent to exactly one vertex in C_i.
    for (int w : layout.quadric_cluster) {
      int adjacent = 0;
      for (int v : cluster) {
        if (g.has_edge(w, v)) ++adjacent;
      }
      EXPECT_EQ(adjacent, 1) << "quadric " << w << " cluster " << i;
    }
    // (3) every V1 vertex in C_i is adjacent to exactly two quadrics.
    for (int v : cluster) {
      if (pf.type(v) != VertexType::kV1) continue;
      int adjacent = 0;
      for (int w : layout.quadric_cluster) {
        if (g.has_edge(w, v)) ++adjacent;
      }
      EXPECT_EQ(adjacent, 2) << "V1 vertex " << v;
    }
  }
}

TEST_P(LayoutProperties, PropertyThreeInterClusterConnectivity) {
  const int q = GetParam();
  const PolarFly pf(q);
  const Layout layout = build_layout(pf);
  const auto& g = pf.graph();
  for (int i = 0; i < q; ++i) {
    for (int j = 0; j < q; ++j) {
      if (i == j) continue;
      const auto& ci = layout.clusters[static_cast<std::size_t>(i)];
      const auto& cj = layout.clusters[static_cast<std::size_t>(j)];
      // (1) q-2 edges between distinct clusters.
      if (j > i) {
        EXPECT_EQ(edges_between(g, ci, cj), q - 2);
      }
      // (2) exactly the center v_j and one non-center u in C_j are not
      // adjacent to C_i.
      int non_adjacent = 0;
      bool center_non_adjacent = false;
      int the_non_center = -1;
      for (int u : cj) {
        bool adj = false;
        for (int v : ci) {
          if (g.has_edge(u, v)) {
            adj = true;
            break;
          }
        }
        if (!adj) {
          ++non_adjacent;
          if (u == layout.centers[static_cast<std::size_t>(j)]) {
            center_non_adjacent = true;
          } else {
            the_non_center = u;
          }
        }
      }
      EXPECT_EQ(non_adjacent, 2);
      EXPECT_TRUE(center_non_adjacent);
      ASSERT_NE(the_non_center, -1);
      // (3) a non-starter quadric adjacent to both u and v_i exists.
      bool found = false;
      for (int w : layout.quadric_cluster) {
        if (w == layout.starter_quadric) continue;
        if (g.has_edge(w, the_non_center) &&
            g.has_edge(w, layout.centers[static_cast<std::size_t>(i)])) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "i=" << i << " j=" << j;
    }
  }
}

TEST_P(LayoutProperties, CorollarySevenThreeUniqueNonStarterQuadrics) {
  // Corollary 7.3: non-starter quadrics pair off 1:1 with cluster centers.
  const int q = GetParam();
  const PolarFly pf(q);
  const Layout layout = build_layout(pf);
  std::vector<int> ws = layout.nonstarter_quadric;
  std::sort(ws.begin(), ws.end());
  EXPECT_EQ(std::unique(ws.begin(), ws.end()), ws.end());
  EXPECT_EQ(static_cast<int>(ws.size()), q);
  for (int w : ws) {
    EXPECT_TRUE(pf.is_quadric(w));
    EXPECT_NE(w, layout.starter_quadric);
  }
}

INSTANTIATE_TEST_SUITE_P(OddPrimePowers, LayoutProperties,
                         ::testing::Values(3, 5, 7, 9, 11, 13, 17, 25, 27));

TEST(LayoutTest, RejectsEvenQ) {
  const PolarFly pf(4);
  EXPECT_THROW(build_layout(pf), std::invalid_argument);
}

TEST(LayoutTest, AllStarterChoicesWork) {
  const PolarFly pf(7);
  for (int s = 0; s < static_cast<int>(pf.quadrics().size()); ++s) {
    const Layout layout = build_layout(pf, s);
    EXPECT_EQ(layout.starter_quadric, pf.quadrics()[static_cast<std::size_t>(s)]);
    EXPECT_EQ(static_cast<int>(layout.clusters.size()), 7);
  }
  EXPECT_THROW(build_layout(pf, 99), std::out_of_range);
}

}  // namespace
}  // namespace pfar::polarfly
