// Deeper algebraic property tests: subfield structure of F_{p^a},
// invariance properties of Singer difference sets, and spectral-free
// strong-regularity facts of ER_q used implicitly by the paper's proofs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gf/field.hpp"
#include "singer/difference_set.hpp"
#include "util/numeric.hpp"

namespace pfar {
namespace {

TEST(SubfieldTest, FrobeniusFixedPointsFormSubfields) {
  // x -> x^(p^d) fixes exactly p^d elements (the subfield F_{p^d}) for
  // every divisor d of a.
  for (int q : {4, 8, 9, 16, 27, 64, 81}) {
    const gf::Field f(q);
    const int p = f.p();
    const int a = f.degree();
    for (int d = 1; d < a; ++d) {
      if (a % d != 0) continue;
      long long sub_order = 1;
      for (int i = 0; i < d; ++i) sub_order *= p;
      int fixed = 0;
      std::set<gf::Elem> subfield;
      for (gf::Elem x = 0; x < q; ++x) {
        if (f.pow(x, sub_order) == x) {
          ++fixed;
          subfield.insert(x);
        }
      }
      EXPECT_EQ(fixed, sub_order) << "q=" << q << " d=" << d;
      // The fixed set is closed under + and * (it is a field).
      for (gf::Elem x : subfield) {
        for (gf::Elem y : subfield) {
          EXPECT_TRUE(subfield.count(f.add(x, y)));
          EXPECT_TRUE(subfield.count(f.mul(x, y)));
        }
      }
    }
  }
}

TEST(SubfieldTest, MultiplicativeGroupIsCyclicOfOrderQMinus1) {
  for (int q : {7, 8, 9, 25, 32, 49}) {
    const gf::Field f(q);
    // Element orders divide q-1; the generator attains it; the number of
    // elements of order exactly q-1 is phi(q-1).
    int primitive_count = 0;
    for (gf::Elem x = 1; x < q; ++x) {
      long long order = 1;
      gf::Elem cur = x;
      while (cur != 1) {
        cur = f.mul(cur, x);
        ++order;
        ASSERT_LE(order, q - 1);
      }
      EXPECT_EQ((q - 1) % order, 0);
      if (order == q - 1) ++primitive_count;
    }
    EXPECT_EQ(primitive_count, util::totient(q - 1));
  }
}

class DifferenceSetInvariance : public ::testing::TestWithParam<int> {};

TEST_P(DifferenceSetInvariance, TranslationPreservesTheProperty) {
  const auto d = singer::build_difference_set(GetParam());
  for (long long shift : {1LL, 5LL, d.n - 1}) {
    std::vector<long long> shifted;
    for (long long e : d.elements) shifted.push_back((e + shift) % d.n);
    std::sort(shifted.begin(), shifted.end());
    EXPECT_TRUE(singer::is_valid_difference_set(shifted, d.n));
  }
}

TEST_P(DifferenceSetInvariance, UnitMultiplicationPreservesTheProperty) {
  // D -> u*D for gcd(u, N) = 1 is again a perfect difference set (the
  // classical multiplier action; our Hamiltonian-pair counting leans on
  // every residue appearing once, which this exercises from another side).
  const auto d = singer::build_difference_set(GetParam());
  for (long long u = 2; u < d.n; ++u) {
    if (util::gcd_ll(u, d.n) != 1) continue;
    std::vector<long long> scaled;
    for (long long e : d.elements) scaled.push_back(util::mod_mul(u, e, d.n));
    std::sort(scaled.begin(), scaled.end());
    EXPECT_TRUE(singer::is_valid_difference_set(scaled, d.n)) << "u=" << u;
    if (u > 12) break;  // a handful of units suffices per q
  }
}

TEST_P(DifferenceSetInvariance, EveryResidueIsAUniqueDifference) {
  // The fact Corollary 7.20's phi(N) count rests on, checked directly:
  // the map (i, j) -> d_i - d_j mod N is a bijection onto 1..N-1.
  const auto d = singer::build_difference_set(GetParam());
  std::set<long long> seen;
  for (long long di : d.elements) {
    for (long long dj : d.elements) {
      if (di == dj) continue;
      const long long diff = ((di - dj) % d.n + d.n) % d.n;
      EXPECT_TRUE(seen.insert(diff).second);
    }
  }
  EXPECT_EQ(static_cast<long long>(seen.size()), d.n - 1);
}

INSTANTIATE_TEST_SUITE_P(PrimePowers, DifferenceSetInvariance,
                         ::testing::Values(3, 4, 5, 7, 8, 9, 11, 13));

}  // namespace
}  // namespace pfar
