// The multi-tenant allreduce service (src/service/, docs/service_layer.md):
// lane construction against the plan's link-disjoint tree groups, the
// tenant-fair scheduler, small-job coalescing, admission control, dynamic
// membership (join replan charge / leave replay), the one-shot equivalence
// of the serial policy, the tentpole throughput claim, and the determinism
// guarantee across SimConfig::shard_threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "collectives/bucket_schedule.hpp"
#include "obsv/recorder.hpp"
#include "service/service.hpp"
#include "util/rng.hpp"

namespace {

using namespace pfar;

core::AllreducePlan make_plan(int q) {
  return core::AllreducePlanner(q)
      .solution(core::Solution::kEdgeDisjoint)
      .build();
}

service::JobSpec job(int tenant, long long elements, long long arrival,
                     int priority = 0,
                     service::ReduceOp op = service::ReduceOp::kSum,
                     int group = 0) {
  service::JobSpec spec;
  spec.tenant = tenant;
  spec.group = group;
  spec.elements = elements;
  spec.op = op;
  spec.priority = priority;
  spec.arrival_cycle = arrival;
  return spec;
}

TEST(ServiceTest, SerialSingleJobMatchesOneShotCost) {
  const auto plan = make_plan(5);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;
  const long long cost =
      collectives::run_bucketed_allreduce(
          plan.topology(), plan.trees(), {1234}, config.sim,
          collectives::BucketStrategy::kFused)
          .total_cycles;

  service::AllreduceService svc(plan, config);
  const int id = svc.submit(job(0, 1234, 100));
  svc.drain();
  const auto& r = svc.records()[static_cast<std::size_t>(id)];
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.admit_cycle, 100);
  EXPECT_EQ(r.start_cycle, 100);
  EXPECT_EQ(r.finish_cycle, 100 + cost);
  EXPECT_EQ(r.lane, 0);
  EXPECT_EQ(r.batch_jobs, 1);
  EXPECT_TRUE(svc.stats().values_correct);
}

TEST(ServiceTest, BackgroundTrafficFlowsThroughLaneRuns) {
  // ServiceConfig::sim carries the background-traffic block verbatim into
  // every lane's simulator run (docs/congestion_adaptation.md): a loaded
  // network must slow jobs down, and a zero-load block must be an exact
  // no-op versus a quiet config.
  const auto plan = make_plan(5);
  const auto run_with = [&](double load) {
    service::ServiceConfig config;
    config.policy = service::SchedulerPolicy::kSerial;
    config.sim.background.pattern = simnet::TrafficPattern::kPermutation;
    config.sim.background.load = load;
    config.sim.background.seed = 7;
    service::AllreduceService svc(plan, config);
    const int id = svc.submit(job(0, 4000, 0));
    svc.drain();
    EXPECT_TRUE(svc.stats().values_correct);
    const auto& r = svc.records()[static_cast<std::size_t>(id)];
    EXPECT_TRUE(r.completed);
    return r.finish_cycle - r.start_cycle;
  };
  const long long quiet = run_with(0.0);
  const long long loaded = run_with(0.5);
  EXPECT_GT(loaded, quiet);

  service::ServiceConfig untouched;  // background never mentioned
  untouched.policy = service::SchedulerPolicy::kSerial;
  service::AllreduceService svc(plan, untouched);
  const int id = svc.submit(job(0, 4000, 0));
  svc.drain();
  EXPECT_EQ(svc.records()[static_cast<std::size_t>(id)].finish_cycle -
                svc.records()[static_cast<std::size_t>(id)].start_cycle,
            quiet);
}

TEST(ServiceTest, LanesMatchLinkDisjointGroups) {
  const auto plan = make_plan(7);
  const auto groups = plan.link_disjoint_tree_groups();

  service::ServiceConfig partitioned;
  partitioned.policy = service::SchedulerPolicy::kPartitioned;
  service::AllreduceService svc(plan, partitioned);
  ASSERT_EQ(svc.num_lanes(), static_cast<int>(groups.size()));
  for (int l = 0; l < svc.num_lanes(); ++l) {
    EXPECT_EQ(svc.lane_trees(l), groups[static_cast<std::size_t>(l)]);
  }

  service::ServiceConfig serial;
  serial.policy = service::SchedulerPolicy::kSerial;
  service::AllreduceService one(plan, serial);
  ASSERT_EQ(one.num_lanes(), 1);
  EXPECT_EQ(static_cast<int>(one.lane_trees(0).size()), plan.num_trees());
}

TEST(ServiceTest, PartitionedRunsJobsConcurrently) {
  const auto plan = make_plan(3);  // 2 edge-disjoint trees -> 2 lanes
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kPartitioned;
  service::AllreduceService svc(plan, config);
  ASSERT_EQ(svc.num_lanes(), 2);
  const int a = svc.submit(job(0, 400, 0));
  const int b = svc.submit(job(1, 400, 0));
  svc.drain();
  const auto& ra = svc.records()[static_cast<std::size_t>(a)];
  const auto& rb = svc.records()[static_cast<std::size_t>(b)];
  // Both dispatched at cycle 0 on distinct lanes: exact concurrency.
  EXPECT_EQ(ra.start_cycle, 0);
  EXPECT_EQ(rb.start_cycle, 0);
  EXPECT_NE(ra.lane, rb.lane);
}

TEST(ServiceTest, BatchedCoalescesQueuedJobs) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kPartitionedBatched;
  service::AllreduceService svc(plan, config);
  // Park both lanes on long jobs of different operators (which therefore
  // cannot coalesce with each other or with the queue behind them).
  svc.submit(job(0, 3000, 0, 0, service::ReduceOp::kSum));
  svc.submit(job(0, 3000, 0, 0, service::ReduceOp::kMax));
  std::vector<int> small;
  for (int i = 0; i < 4; ++i) {
    small.push_back(svc.submit(job(1, 100, 1, 0, service::ReduceOp::kSum)));
  }
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.completed, 6);
  EXPECT_EQ(stats.batches, 3);  // two parked jobs + one fused batch of 4
  EXPECT_EQ(stats.coalesced_jobs, 4);
  long long fused_finish = -1;
  for (int id : small) {
    const auto& r = svc.records()[static_cast<std::size_t>(id)];
    EXPECT_EQ(r.batch_jobs, 4);
    if (fused_finish < 0) fused_finish = r.finish_cycle;
    EXPECT_EQ(r.finish_cycle, fused_finish);  // land together (kFused)
  }
}

TEST(ServiceTest, BatchedThroughputAtLeastTwiceSerial) {
  // The tentpole acceptance claim at test scale: a small-message burst at
  // q=7 (4 lanes). Partitioning amortizes nothing by itself on a
  // bandwidth-neutral fabric — the >= 2x comes from paying the deep
  // Hamiltonian pipeline fill once per fused batch instead of once per
  // job, across 4 concurrent lanes.
  const auto plan = make_plan(7);
  util::Rng rng(7);
  std::vector<service::JobSpec> burst;
  for (int i = 0; i < 80; ++i) {
    burst.push_back(job(i % 4,
                        64 + static_cast<long long>(rng.next_below(449)),
                        0));
  }
  const auto run = [&](service::SchedulerPolicy policy) {
    service::ServiceConfig config;
    config.policy = policy;
    service::AllreduceService svc(plan, config);
    for (const auto& spec : burst) svc.submit(spec);
    svc.drain();
    const auto stats = svc.stats();
    EXPECT_EQ(stats.completed, 80);
    EXPECT_TRUE(stats.values_correct);
    return stats.jobs_per_kcycle;
  };
  const double serial = run(service::SchedulerPolicy::kSerial);
  const double batched = run(service::SchedulerPolicy::kPartitionedBatched);
  EXPECT_GE(batched, 2.0 * serial)
      << "batched " << batched << " vs serial " << serial;
}

TEST(ServiceTest, TenantFairnessPreventsStarvation) {
  // Tenant 0 floods the queue; tenant 1's two jobs must interleave by the
  // served-elements ledger instead of waiting behind the flood.
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;
  service::AllreduceService svc(plan, config);
  std::vector<int> flood;
  for (int i = 0; i < 6; ++i) flood.push_back(svc.submit(job(0, 500, 0)));
  std::vector<int> light;
  for (int i = 0; i < 2; ++i) light.push_back(svc.submit(job(1, 500, 0)));
  svc.drain();
  long long light_last = 0;
  for (int id : light) {
    light_last = std::max(light_last,
                          svc.records()[static_cast<std::size_t>(id)]
                              .finish_cycle);
  }
  int flood_before = 0;
  for (int id : flood) {
    const auto& r = svc.records()[static_cast<std::size_t>(id)];
    EXPECT_TRUE(r.completed);
    if (r.finish_cycle < light_last) ++flood_before;
  }
  // Strict alternation once the ledger diverges: at most 2 flood jobs can
  // precede the light tenant's last finish.
  EXPECT_LE(flood_before, 2);
}

TEST(ServiceTest, PriorityOrdersWithinTenant) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;
  service::AllreduceService svc(plan, config);
  svc.submit(job(0, 2000, 0));  // parks the single lane
  const int low = svc.submit(job(0, 300, 1, /*priority=*/0));
  const int high = svc.submit(job(0, 300, 2, /*priority=*/5));
  svc.drain();
  // Despite arriving later, the high-priority job dispatches first.
  EXPECT_LT(svc.records()[static_cast<std::size_t>(high)].finish_cycle,
            svc.records()[static_cast<std::size_t>(low)].finish_cycle);
}

TEST(ServiceTest, AdmissionControlRejectsOverflow) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;
  config.max_queue_jobs = 2;
  service::AllreduceService svc(plan, config);
  svc.submit(job(0, 2000, 0));  // dispatched immediately, leaves the queue
  std::vector<int> wave;
  for (int i = 0; i < 4; ++i) wave.push_back(svc.submit(job(0, 200, 1)));
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.submitted, 5);
  EXPECT_EQ(stats.admitted, 3);
  EXPECT_EQ(stats.rejected, 2);
  EXPECT_EQ(stats.completed, 3);
  // Arrival order decides who hits the full queue: the first two of the
  // wave are admitted, the last two rejected.
  EXPECT_FALSE(svc.records()[static_cast<std::size_t>(wave[0])].rejected);
  EXPECT_FALSE(svc.records()[static_cast<std::size_t>(wave[1])].rejected);
  EXPECT_TRUE(svc.records()[static_cast<std::size_t>(wave[2])].rejected);
  EXPECT_TRUE(svc.records()[static_cast<std::size_t>(wave[3])].rejected);
}

TEST(ServiceTest, SingleMemberGroupCompletesInstantly) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  service::AllreduceService svc(plan, config);
  const int g = svc.create_group({2});
  const int id = svc.submit(job(0, 500, 7, 0, service::ReduceOp::kSum, g));
  svc.drain();
  const auto& r = svc.records()[static_cast<std::size_t>(id)];
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.finish_cycle, 7);  // no fabric, no cycles
  EXPECT_EQ(r.lane, -1);
  EXPECT_EQ(svc.stats().total_flits, 0);
}

TEST(ServiceTest, ZeroElementJobCompletesInstantly) {
  const auto plan = make_plan(3);
  service::AllreduceService svc(plan, service::ServiceConfig{});
  const int id = svc.submit(job(0, 0, 11));
  svc.drain();
  const auto& r = svc.records()[static_cast<std::size_t>(id)];
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.finish_cycle, 11);
  EXPECT_EQ(svc.stats().total_flits, 0);
}

TEST(ServiceTest, JoinChargesReplanOnNextDispatch) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;

  const auto run = [&](bool with_join) {
    service::AllreduceService svc(plan, config);
    const int g = svc.create_group({0, 1, 2});
    svc.submit(job(0, 400, 0, 0, service::ReduceOp::kSum, g));
    svc.drain();
    if (with_join) svc.join(g, 5, svc.now());
    const int id = svc.submit(job(0, 400, svc.now(), 0,
                                  service::ReduceOp::kSum, g));
    svc.drain();
    const auto& r = svc.records()[static_cast<std::size_t>(id)];
    return r.finish_cycle - r.start_cycle;
  };
  const long long plain = run(false);
  const long long joined = run(true);
  // A join never interrupts in-flight work (new leaves participate from
  // the next reduction on); it only charges the replan.
  EXPECT_EQ(joined - plain, config.replan_cycles);
}

TEST(ServiceTest, LeaveReplaysInFlightRemainder) {
  const auto plan = make_plan(3);
  service::ServiceConfig config;
  config.policy = service::SchedulerPolicy::kSerial;
  const long long cost =
      collectives::run_bucketed_allreduce(
          plan.topology(), plan.trees(), {2000}, config.sim,
          collectives::BucketStrategy::kFused)
          .total_cycles;

  service::AllreduceService svc(plan, config);
  const int g = svc.create_group({0, 1, 2, 3, 4, 5});
  const int id = svc.submit(job(0, 2000, 0, 0, service::ReduceOp::kSum, g));
  const long long cut = cost / 2;
  svc.leave(g, 3, cut);
  svc.drain();

  const auto& r = svc.records()[static_cast<std::size_t>(id)];
  const auto stats = svc.stats();
  EXPECT_TRUE(r.completed);
  // The delivered prefix survived; only the remainder re-ran.
  EXPECT_GT(r.replayed_elements, 0);
  EXPECT_LT(r.replayed_elements, 2000);
  EXPECT_EQ(stats.replans, 1);
  EXPECT_EQ(stats.replayed_elements, r.replayed_elements);
  // Finish: interrupted at cut, then replan + backoff + remainder run.
  EXPECT_GT(r.finish_cycle,
            cut + config.replan_cycles + config.replay_backoff_cycles);
  EXPECT_TRUE(stats.values_correct);
}

TEST(ServiceDeterminism, BitIdenticalAcrossShardThreads) {
  // The service schedule is integer arithmetic over deterministic sim
  // results, and the lane theory makes intra-run sharding exact — so the
  // whole multi-tenant timeline must be bit-identical for every
  // shard_threads value.
  const auto plan = make_plan(5);
  const auto run = [&](int shard_threads) {
    service::ServiceConfig config;
    config.policy = service::SchedulerPolicy::kPartitionedBatched;
    config.sim.shard_threads = shard_threads;
    service::AllreduceService svc(plan, config);
    util::Rng rng(11);
    for (int i = 0; i < 12; ++i) {
      svc.submit(job(i % 3,
                     64 + static_cast<long long>(rng.next_below(2000)),
                     static_cast<long long>(i) * 97));
    }
    svc.drain();
    std::vector<long long> timeline;
    for (const auto& r : svc.records()) {
      timeline.push_back(r.start_cycle);
      timeline.push_back(r.finish_cycle);
      timeline.push_back(r.lane);
      timeline.push_back(r.batch_jobs);
    }
    return timeline;
  };
  EXPECT_EQ(run(1), run(3));
}

TEST(ServiceTest, ResumableAcrossDrains) {
  const auto plan = make_plan(3);
  service::AllreduceService svc(plan, service::ServiceConfig{});
  svc.submit(job(0, 300, 0));
  svc.drain();
  const long long after_first = svc.now();
  EXPECT_GT(after_first, 0);
  // Late submission dated in the past is clamped to the persistent clock.
  const int id = svc.submit(job(0, 300, 0));
  svc.drain();
  const auto& r = svc.records()[static_cast<std::size_t>(id)];
  EXPECT_TRUE(r.completed);
  EXPECT_GE(r.admit_cycle, after_first);
  EXPECT_EQ(svc.stats().completed, 2);
}

TEST(ServiceTest, RecorderCapturesServiceTelemetry) {
  if (!obsv::kTraceCompiled) {
    GTEST_SKIP() << "tracing compiled out (PFAR_TRACE=off)";
  }
  const auto plan = make_plan(3);
  obsv::Recorder recorder(1u << 16);
  service::ServiceConfig config;
  config.sim.recorder = &recorder;
  service::AllreduceService svc(plan, config);
  for (int i = 0; i < 5; ++i) svc.submit(job(i % 2, 200, i * 10));
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(recorder.metrics.counter("service.jobs.completed"),
            stats.completed);
  EXPECT_EQ(recorder.metrics.counter("service.jobs.admitted"),
            stats.admitted);
  EXPECT_EQ(recorder.metrics.counter("service.batches"), stats.batches);
  EXPECT_GT(recorder.trace.size(), 0u);  // per-lane batch spans
}

TEST(ServiceTest, PolicyNamesRoundTrip) {
  for (const auto policy : {service::SchedulerPolicy::kSerial,
                            service::SchedulerPolicy::kPartitioned,
                            service::SchedulerPolicy::kPartitionedBatched}) {
    EXPECT_EQ(service::policy_from_string(service::to_string(policy)),
              policy);
  }
  EXPECT_THROW(service::policy_from_string("fifo"), std::invalid_argument);
}

TEST(ServiceTest, ShardThreadsEnvDefault) {
  // PFAR_THREADS is the ambient parallelism knob everywhere else (sweep
  // runners, planner builds); SimConfig::shard_threads defaults from it
  // too, read at construction so tests can toggle the environment.
  ::setenv("PFAR_THREADS", "5", 1);
  EXPECT_EQ(simnet::default_shard_threads(), 5);
  EXPECT_EQ(simnet::SimConfig{}.shard_threads, 5);
  ::setenv("PFAR_THREADS", "0", 1);
  EXPECT_EQ(simnet::default_shard_threads(), 1);
  ::setenv("PFAR_THREADS", "not-a-number", 1);
  EXPECT_EQ(simnet::default_shard_threads(), 1);
  ::unsetenv("PFAR_THREADS");
  EXPECT_EQ(simnet::default_shard_threads(), 1);
  EXPECT_EQ(simnet::SimConfig{}.shard_threads, 1);
}

}  // namespace
