#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "simnet/allreduce_sim.hpp"

namespace pfar::simnet {
namespace {

graph::Graph line_graph(int n) {
  graph::Graph g(n);
  for (int i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  g.finalize();
  return g;
}

TEST(CollectiveModeTest, ReduceOnlyDeliversAtRoot) {
  graph::Graph g = line_graph(4);
  SimConfig cfg;
  cfg.collective = Collective::kReduce;
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, cfg);
  const auto r = sim.run({500});
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements, 500);
  // Reduce halves the link traffic of Allreduce: broadcast VCs are never
  // instantiated.
  EXPECT_EQ(r.num_vcs, 3);  // one reduce VC per tree edge
}

TEST(CollectiveModeTest, BroadcastOnlyStreamsFromRoot) {
  graph::Graph g = line_graph(4);
  SimConfig cfg;
  cfg.collective = Collective::kBroadcast;
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 1, 2}}}, cfg);
  const auto r = sim.run({500});
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.num_vcs, 3);  // one bcast VC per tree edge
  EXPECT_GT(r.aggregate_bandwidth, 0.9);
}

TEST(CollectiveModeTest, ReduceIsFasterThanAllreduce) {
  graph::Graph g = line_graph(5);
  SimConfig reduce_cfg;
  reduce_cfg.collective = Collective::kReduce;
  AllreduceSimulator reduce_sim(g, {TreeEmbedding{0, {-1, 0, 1, 2, 3}}},
                                reduce_cfg);
  AllreduceSimulator ar_sim(g, {TreeEmbedding{0, {-1, 0, 1, 2, 3}}},
                            SimConfig{});
  const auto red = reduce_sim.run({2000});
  const auto ar = ar_sim.run({2000});
  EXPECT_TRUE(red.values_correct);
  EXPECT_TRUE(ar.values_correct);
  // Same streaming rate but no broadcast turnaround/drain.
  EXPECT_LT(red.cycles, ar.cycles);
}

TEST(CollectiveModeTest, AllModesOnPolarFlyPlans) {
  const auto plan = core::AllreducePlanner(5).build();
  std::vector<simnet::TreeEmbedding> embeddings;
  for (const auto& t : plan.trees()) {
    embeddings.push_back(simnet::TreeEmbedding{t.root(), t.parents()});
  }
  for (Collective mode : {Collective::kAllreduce, Collective::kReduce,
                          Collective::kBroadcast}) {
    SimConfig cfg;
    cfg.collective = mode;
    AllreduceSimulator sim(plan.topology(), embeddings, cfg);
    const auto r = sim.run(std::vector<long long>(static_cast<std::size_t>(plan.num_trees()), 500));
    EXPECT_TRUE(r.values_correct) << static_cast<int>(mode);
  }
}

TEST(PacketizationTest, HeaderOverheadReducesBandwidth) {
  graph::Graph g = line_graph(3);
  const TreeEmbedding chain{0, {-1, 0, 1}};
  SimConfig raw;  // payload 1, no header
  SimConfig framed;
  framed.packet_payload = 4;
  framed.packet_header_flits = 1;  // 80% efficiency
  AllreduceSimulator raw_sim(g, {chain}, raw);
  AllreduceSimulator framed_sim(g, {chain}, framed);
  const auto a = raw_sim.run({8000});
  const auto b = framed_sim.run({8000});
  EXPECT_TRUE(a.values_correct);
  EXPECT_TRUE(b.values_correct);
  EXPECT_NEAR(a.aggregate_bandwidth, 1.0, 0.05);
  EXPECT_NEAR(b.aggregate_bandwidth, 0.8, 0.05);
}

TEST(PacketizationTest, LargePacketsAmortizeHeaders) {
  graph::Graph g = line_graph(3);
  const TreeEmbedding chain{0, {-1, 0, 1}};
  SimConfig small;
  small.packet_payload = 2;
  small.packet_header_flits = 2;  // 50%
  SimConfig big;
  big.packet_payload = 32;
  big.packet_header_flits = 2;  // ~94%
  big.vc_credits = 16;
  AllreduceSimulator small_sim(g, {chain}, small);
  AllreduceSimulator big_sim(g, {chain}, big);
  const auto a = small_sim.run({16000});
  const auto b = big_sim.run({16000});
  EXPECT_TRUE(a.values_correct);
  EXPECT_TRUE(b.values_correct);
  EXPECT_GT(b.aggregate_bandwidth, 1.5 * a.aggregate_bandwidth);
}

TEST(PacketizationTest, PartialTailPacketHandled) {
  // m not divisible by payload: the final short packet must stay aligned
  // across children and verify exactly.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.finalize();
  SimConfig cfg;
  cfg.packet_payload = 7;
  AllreduceSimulator sim(g, {TreeEmbedding{0, {-1, 0, 0, 0}}}, cfg);
  const auto r = sim.run({995});  // 995 = 142*7 + 1
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.total_elements, 995);
}

TEST(EngineStatsTest, LowDepthTreesNeedOneReductionPerPort) {
  // Lemma 7.8's hardware consequence: every router input port feeds at
  // most one tree's reduction, despite congestion 2.
  const auto plan = core::AllreducePlanner(7).build();
  const auto res = plan.simulate(100);
  EXPECT_EQ(res.sim.max_reductions_per_input_port, 1);
}

TEST(EngineStatsTest, EdgeDisjointTreesNeedOneReductionPerPort) {
  const auto plan =
      core::AllreducePlanner(7).solution(core::Solution::kEdgeDisjoint).build();
  const auto res = plan.simulate(100);
  EXPECT_EQ(res.sim.max_reductions_per_input_port, 1);
}

TEST(CollectiveModeTest, ReduceOnlyDoublesLowDepthBandwidth) {
  // A consequence of Lemma 7.8 the paper does not spell out: the two
  // trees sharing a link reduce in OPPOSITE directions, so with no
  // broadcast phase each tree streams at full link rate — reduce-only
  // aggregate approaches q*B, twice the Allreduce q*B/2.
  const auto plan = core::AllreducePlanner(5).build();
  std::vector<TreeEmbedding> embeddings;
  for (const auto& t : plan.trees()) {
    embeddings.push_back(TreeEmbedding{t.root(), t.parents()});
  }
  SimConfig reduce_cfg;
  reduce_cfg.collective = Collective::kReduce;
  AllreduceSimulator reduce_sim(plan.topology(), embeddings, reduce_cfg);
  AllreduceSimulator ar_sim(plan.topology(), embeddings, SimConfig{});
  const std::vector<long long> split(static_cast<std::size_t>(plan.num_trees()), 4000);
  const auto red = reduce_sim.run(split);
  const auto ar = ar_sim.run(split);
  EXPECT_TRUE(red.values_correct);
  EXPECT_TRUE(ar.values_correct);
  EXPECT_GT(red.aggregate_bandwidth, 0.9 * 5.0);   // ~ q * B
  EXPECT_LT(ar.aggregate_bandwidth, 0.55 * 5.0);   // ~ q * B / 2
}

TEST(PipelineFillTest, FirstDeliveryTracksTreeDepth) {
  // The paper's latency story in one measurement: depth-3 trees fill their
  // pipeline an order of magnitude sooner than depth-(N-1)/2 trees.
  const auto shallow = core::AllreducePlanner(7).build();
  const auto deep =
      core::AllreducePlanner(7).solution(core::Solution::kEdgeDisjoint).build();
  const auto rs = shallow.simulate(1000);
  const auto rd = deep.simulate(1000);
  long long first_shallow = 1 << 30, first_deep = 1 << 30;
  for (long long c : rs.sim.tree_first_delivery) {
    first_shallow = std::min(first_shallow, c);
  }
  for (long long c : rd.sim.tree_first_delivery) {
    first_deep = std::min(first_deep, c);
  }
  // Shallow: ~2*3 hops of (latency+1); deep: ~2*28 hops.
  EXPECT_LT(first_shallow * 4, first_deep);
}

TEST(EngineStatsTest, OverlappingReductionDirectionsAreCounted) {
  // Two chains reduced in the SAME direction over the same links: both
  // reductions consume the same input ports.
  graph::Graph g = line_graph(3);
  const TreeEmbedding a{2, {1, 2, -1}};
  const TreeEmbedding b{2, {1, 2, -1}};
  AllreduceSimulator sim(g, {a, b}, SimConfig{});
  const auto r = sim.run({50, 50});
  EXPECT_TRUE(r.values_correct);
  EXPECT_EQ(r.max_reductions_per_input_port, 2);
}

}  // namespace
}  // namespace pfar::simnet
