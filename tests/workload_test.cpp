// Trace-driven training replay (src/workload, docs/training_replay.md):
//
//  * the trace model: seeded synthesis is deterministic, JSON round-trips
//    exactly, schema violations are rejected, and bucketization partitions
//    the gradients back-to-front with monotone release offsets;
//  * the replay engine: bit-identical across runs and shard counts,
//    overlap strictly beats the serialized baseline, stragglers stretch
//    the epoch without touching the fabric-side fields;
//  * composition: fault scripts ride the resilient driver (kSingle),
//    background traffic flows through the service lanes, the adaptive
//    controller charges its probe window, and the service backend rejects
//    fault scripts by contract;
//  * observability: the replay emits the kTrackWorkload timeline and
//    workload.* counters, and pfar_report renders the training-replay
//    section.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/planner.hpp"
#include "graph/graph.hpp"
#include "obsv/recorder.hpp"
#include "obsv/report.hpp"
#include "obsv/trace.hpp"
#include "util/contracts.hpp"
#include "workload/replay.hpp"
#include "workload/trace.hpp"

namespace {

using namespace pfar;

// The tree-0 uplink of the smallest non-root vertex: a link the plan is
// guaranteed to use, so downing it hurts at least one tree.
graph::Edge used_link(const core::AllreducePlan& plan) {
  const auto& parents = plan.trees()[0].parents();
  for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
    if (parents[static_cast<std::size_t>(v)] >= 0) {
      return graph::Edge(v, parents[static_cast<std::size_t>(v)]);
    }
  }
  throw std::logic_error("tree has no edges");
}

workload::ReplayConfig base_config(int layers = 6, int iterations = 2) {
  workload::ReplayConfig cfg;
  workload::ModelParams params;
  params.layers = layers;
  params.iterations = iterations;
  params.layer_elements = 1500;
  params.forward_cycles = 1200;
  cfg.trace = workload::synthesize_trace(params);
  cfg.min_bucket_elements = 2048;
  return cfg;
}

void expect_identical(const workload::ReplayResult& a,
                      const workload::ReplayResult& b, const char* label) {
  EXPECT_EQ(a.time_to_epoch, b.time_to_epoch) << label;
  EXPECT_EQ(a.compute_cycles, b.compute_cycles) << label;
  EXPECT_EQ(a.comm_wall_cycles, b.comm_wall_cycles) << label;
  EXPECT_EQ(a.comm_busy_cycles, b.comm_busy_cycles) << label;
  EXPECT_EQ(a.exposed_comm_cycles, b.exposed_comm_cycles) << label;
  EXPECT_EQ(a.total_flits, b.total_flits) << label;
  EXPECT_EQ(a.slowest_node, b.slowest_node) << label;
  EXPECT_EQ(a.slow_permille, b.slow_permille) << label;
  EXPECT_DOUBLE_EQ(a.overlap_efficiency, b.overlap_efficiency) << label;
  ASSERT_EQ(a.iterations.size(), b.iterations.size()) << label;
  for (std::size_t i = 0; i < a.iterations.size(); ++i) {
    EXPECT_EQ(a.iterations[i].start, b.iterations[i].start) << label;
    EXPECT_EQ(a.iterations[i].compute_done, b.iterations[i].compute_done)
        << label;
    EXPECT_EQ(a.iterations[i].comm_done, b.iterations[i].comm_done) << label;
    EXPECT_EQ(a.iterations[i].finish, b.iterations[i].finish) << label;
  }
}

// --- Trace model ------------------------------------------------------------

TEST(WorkloadTrace, SynthesisIsSeededDeterministic) {
  workload::ModelParams params;
  const auto a = workload::synthesize_trace(params);
  const auto b = workload::synthesize_trace(params);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].forward_cycles, b.layers[i].forward_cycles);
    EXPECT_EQ(a.layers[i].backward_cycles, b.layers[i].backward_cycles);
    EXPECT_EQ(a.layers[i].gradient_elements, b.layers[i].gradient_elements);
  }
  params.seed = 2;
  const auto c = workload::synthesize_trace(params);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    any_diff = any_diff ||
               a.layers[i].gradient_elements != c.layers[i].gradient_elements;
  }
  EXPECT_TRUE(any_diff) << "seed must reshape the synthesized model";
}

TEST(WorkloadTrace, JsonRoundTripsExactly) {
  workload::ModelParams params;
  params.layers = 5;
  const auto trace = workload::synthesize_trace(params);
  const std::string json = workload::trace_to_json(trace);
  const auto back = workload::parse_trace_json(json);
  EXPECT_EQ(back.iterations, trace.iterations);
  ASSERT_EQ(back.layers.size(), trace.layers.size());
  for (std::size_t i = 0; i < trace.layers.size(); ++i) {
    EXPECT_EQ(back.layers[i].forward_cycles, trace.layers[i].forward_cycles);
    EXPECT_EQ(back.layers[i].backward_cycles,
              trace.layers[i].backward_cycles);
    EXPECT_EQ(back.layers[i].gradient_elements,
              trace.layers[i].gradient_elements);
  }
  // Serialization itself is byte-deterministic.
  EXPECT_EQ(json, workload::trace_to_json(back));
}

TEST(WorkloadTrace, ParseRejectsSchemaViolations) {
  const char* bad[] = {
      "",                                     // not JSON
      "[1, 2]",                               // not an object
      "{\"iterations\": 2}",                  // layers missing
      "{\"iterations\": 2, \"layers\": []}",  // layers empty
      "{\"iterations\": 0, \"layers\": [{\"forward_cycles\": 1, "
      "\"backward_cycles\": 1, \"gradient_elements\": 1}]}",  // iterations<1
      "{\"layers\": [{\"forward_cycles\": 1}]}",     // fields missing
      "{\"layers\": [{\"forward_cycles\": -1, \"backward_cycles\": 1, "
      "\"gradient_elements\": 1}]}",                 // negative
      "{\"layers\": [42]}",                          // layer not an object
  };
  for (const char* text : bad) {
    EXPECT_THROW(workload::parse_trace_json(text), std::invalid_argument)
        << text;
  }
}

TEST(WorkloadTrace, BucketizePartitionsGradientsBackToFront) {
  workload::ModelParams params;
  params.layers = 10;
  const auto trace = workload::synthesize_trace(params);
  const auto buckets = workload::bucketize(trace, 4096);
  ASSERT_FALSE(buckets.empty());
  EXPECT_EQ(buckets.front().last_layer,
            static_cast<int>(trace.layers.size()) - 1);
  EXPECT_EQ(buckets.back().first_layer, 0);
  long long covered = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    covered += buckets[i].elements;
    EXPECT_LE(buckets[i].first_layer, buckets[i].last_layer);
    if (i + 1 < buckets.size()) {
      // Back-to-front and at least the requested granularity (only the
      // last bucket of the epoch may come up short).
      EXPECT_GE(buckets[i].elements, 4096);
      EXPECT_EQ(buckets[i].first_layer, buckets[i + 1].last_layer + 1);
      EXPECT_LE(buckets[i].ready_offset, buckets[i + 1].ready_offset);
    }
  }
  EXPECT_EQ(covered, trace.total_gradient_elements());
  EXPECT_EQ(buckets.back().ready_offset, trace.total_compute_cycles());
  // min <= 0: one bucket per gradient-bearing layer.
  const auto fine = workload::bucketize(trace, 0);
  EXPECT_EQ(fine.size(), trace.layers.size());
}

// --- Skew model -------------------------------------------------------------

TEST(WorkloadSkew, MultipliersAreSeededBoundedAndStragglerAware) {
  workload::SkewSpec skew;
  skew.skew_permille = 300;
  skew.straggler_nodes = 2;
  skew.straggler_permille = 2500;
  const auto a = workload::node_multipliers(skew, 57);
  const auto b = workload::node_multipliers(skew, 57);
  EXPECT_EQ(a, b);
  int stragglers = 0;
  for (int m : a) {
    EXPECT_GE(m, 1000);
    if (m >= 2500) {
      ++stragglers;
    } else {
      EXPECT_LE(m, 1300);
    }
  }
  EXPECT_EQ(stragglers, 2);
  // Toggling the jitter must not reshuffle WHICH nodes straggle.
  workload::SkewSpec no_jitter = skew;
  no_jitter.skew_permille = 0;
  const auto c = workload::node_multipliers(no_jitter, 57);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i] >= 2500, c[i] >= 2500) << i;
  }
  // No skew at all: every node at par.
  const auto flat = workload::node_multipliers(workload::SkewSpec{}, 8);
  for (int m : flat) EXPECT_EQ(m, 1000);
}

// --- Replay engine ----------------------------------------------------------

TEST(WorkloadDeterminism, ReplayBitIdenticalAcrossRunsAndShards) {
  const auto plan = core::AllreducePlanner(7).build();
  for (const workload::CommMode mode :
       {workload::CommMode::kService, workload::CommMode::kSingle}) {
    workload::ReplayConfig cfg = base_config();
    cfg.mode = mode;
    cfg.skew.skew_permille = 200;
    const auto a = workload::replay_training(plan, cfg);
    const auto b = workload::replay_training(plan, cfg);
    expect_identical(a, b, "same config, second run");
    workload::ReplayConfig sharded = cfg;
    sharded.sim.shard_threads = 4;
    const auto c = workload::replay_training(plan, sharded);
    expect_identical(a, c, "shard_threads = 4");
  }
}

TEST(WorkloadReplay, OverlapStrictlyBeatsSerializedBaseline) {
  const auto plan = core::AllreducePlanner(7).build();
  for (const workload::CommMode mode :
       {workload::CommMode::kService, workload::CommMode::kSingle}) {
    workload::ReplayConfig cfg = base_config();
    cfg.mode = mode;
    const auto on = workload::replay_training(plan, cfg);
    cfg.overlap = false;
    const auto off = workload::replay_training(plan, cfg);
    EXPECT_LT(on.time_to_epoch, off.time_to_epoch);
    EXPECT_LT(on.exposed_comm_cycles, off.exposed_comm_cycles);
    EXPECT_GT(on.overlap_efficiency, off.overlap_efficiency);
    // Serialized: nothing hides, every comm wall cycle is exposed.
    EXPECT_EQ(off.exposed_comm_cycles, off.comm_wall_cycles);
    EXPECT_DOUBLE_EQ(off.overlap_efficiency, 0.0);
    EXPECT_TRUE(on.values_correct);
    EXPECT_TRUE(off.values_correct);
  }
}

TEST(WorkloadReplay, StragglerStretchesEpochNotFabric) {
  const auto plan = core::AllreducePlanner(7).build();
  workload::ReplayConfig cfg = base_config();
  const auto healthy = workload::replay_training(plan, cfg);
  cfg.skew.straggler_nodes = 1;
  cfg.skew.straggler_permille = 4000;
  const auto straggling = workload::replay_training(plan, cfg);
  EXPECT_GT(straggling.time_to_epoch, healthy.time_to_epoch);
  EXPECT_EQ(straggling.slow_permille, 4000);
  // The fabric does the same work; only the compute timeline moved.
  EXPECT_EQ(straggling.total_flits, healthy.total_flits);
  EXPECT_EQ(straggling.comm_wall_cycles, healthy.comm_wall_cycles);
  // 4x compute on the critical path: epoch scales by ~4 (comm adds slack).
  EXPECT_GE(straggling.time_to_epoch, healthy.time_to_epoch * 3);
}

TEST(WorkloadReplay, IterationTimelineIsCoherent) {
  const auto plan = core::AllreducePlanner(7).build();
  workload::ReplayConfig cfg = base_config(/*layers=*/6, /*iterations=*/3);
  const auto res = workload::replay_training(plan, cfg);
  ASSERT_EQ(res.iterations.size(), 3u);
  long long prev_finish = 0;
  for (const auto& iter : res.iterations) {
    EXPECT_EQ(iter.start, prev_finish);
    EXPECT_GT(iter.compute_done, iter.start);
    EXPECT_EQ(iter.finish, std::max(iter.compute_done, iter.comm_done));
    EXPECT_LE(iter.exposed_comm_cycles, iter.comm_wall_cycles);
    EXPECT_LE(iter.comm_wall_cycles, iter.comm_busy_cycles);
    prev_finish = iter.finish;
  }
  EXPECT_EQ(res.time_to_epoch, prev_finish);
  EXPECT_EQ(res.buckets.size(),
            workload::bucketize(cfg.trace, cfg.min_bucket_elements).size());
}

// --- Composition with the fault / background / adaptive layers --------------

TEST(WorkloadReplay, FaultScriptComposesThroughResilientDriver) {
  const auto plan = core::AllreducePlanner(7).build();
  const graph::Edge link = used_link(plan);
  workload::ReplayConfig cfg = base_config();
  cfg.mode = workload::CommMode::kSingle;
  const auto healthy = workload::replay_training(plan, cfg);
  cfg.sim.progress_timeout = 1500;
  cfg.sim.faults.events.push_back(
      {200, link.u, link.v, simnet::FaultType::kLinkDown});
  const auto faulted = workload::replay_training(plan, cfg);
  EXPECT_TRUE(faulted.values_correct)
      << "resilient driver must recover the downed link";
  EXPECT_GT(faulted.time_to_epoch, healthy.time_to_epoch);
  EXPECT_GT(faulted.replayed_elements, 0);
}

TEST(WorkloadReplay, BackgroundTrafficComposesInServiceMode) {
  const auto plan = core::AllreducePlanner(7).build();
  workload::ReplayConfig cfg = base_config();
  const auto quiet = workload::replay_training(plan, cfg);
  cfg.sim.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.sim.background.load = 0.5;
  cfg.sim.background.seed = 7;
  const auto loaded = workload::replay_training(plan, cfg);
  EXPECT_TRUE(loaded.values_correct);
  EXPECT_GE(loaded.time_to_epoch, quiet.time_to_epoch);
  EXPECT_GT(loaded.comm_wall_cycles, quiet.comm_wall_cycles);
  const auto replayed = workload::replay_training(plan, cfg);
  expect_identical(loaded, replayed, "background replay determinism");
}

TEST(WorkloadReplay, AdaptiveControllerChargesProbeWindow) {
  const auto plan = core::AllreducePlanner(7).build();
  workload::ReplayConfig cfg = base_config();
  cfg.mode = workload::CommMode::kSingle;
  cfg.sim.background.pattern = simnet::TrafficPattern::kPermutation;
  cfg.sim.background.load = 0.5;
  cfg.sim.background.seed = 7;
  cfg.adaptive = true;
  const auto res = workload::replay_training(plan, cfg);
  EXPECT_TRUE(res.values_correct);
  EXPECT_GT(res.probe_cycles, 0);
  // The probe window delays the first iteration's communication but never
  // the compute timeline.
  EXPECT_EQ(res.iterations.front().start, 0);
  const auto replayed = workload::replay_training(plan, cfg);
  expect_identical(res, replayed, "adaptive replay determinism");
}

TEST(WorkloadReplay, ServiceModeRejectsFaultScriptsByContract) {
  const auto plan = core::AllreducePlanner(7).build();
  const graph::Edge link = used_link(plan);
  workload::ReplayConfig cfg = base_config();
  cfg.mode = workload::CommMode::kService;
  cfg.sim.faults.events.push_back(
      {200, link.u, link.v, simnet::FaultType::kLinkDown});
  util::contracts::ScopedThrowHandler guard;
  EXPECT_THROW(workload::replay_training(plan, cfg),
               util::contracts::ContractViolation);
  cfg.sim.faults.events.clear();
  cfg.adaptive = true;
  EXPECT_THROW(workload::replay_training(plan, cfg),
               util::contracts::ContractViolation);
}

// --- Observability ----------------------------------------------------------

TEST(WorkloadObsv, EmitsTimelineAndCountersRenderedByReport) {
  if (!obsv::kTraceCompiled) {
    GTEST_SKIP() << "instrumentation compiled out (PFAR_TRACE=off)";
  }
  const auto plan = core::AllreducePlanner(7).build();
  obsv::Recorder recorder(1u << 18);
  workload::ReplayConfig cfg = base_config();
  cfg.sim.recorder = &recorder;
  const auto res = workload::replay_training(plan, cfg);
  EXPECT_EQ(recorder.metrics.counter("workload.iterations"),
            cfg.trace.iterations);
  EXPECT_EQ(recorder.metrics.counter("workload.compute_cycles"),
            res.compute_cycles);
  EXPECT_EQ(recorder.metrics.counter("workload.comm_wall_cycles"),
            res.comm_wall_cycles);
  EXPECT_EQ(recorder.metrics.counter("workload.exposed_comm_cycles"),
            res.exposed_comm_cycles);
  EXPECT_GT(recorder.trace.size(), 0u);

  std::ostringstream trace_json, metrics_jsonl;
  recorder.trace.write_chrome_json(trace_json);
  recorder.metrics.write_jsonl(metrics_jsonl);
  const auto report =
      obsv::build_report(trace_json.str(), metrics_jsonl.str());
  // Per iteration: compute span + comm span + barrier instant.
  ASSERT_GE(report.workload.size(),
            static_cast<std::size_t>(cfg.trace.iterations) * 2);
  std::ostringstream rendered;
  obsv::render_report(report, rendered);
  EXPECT_NE(rendered.str().find("training replay timeline"),
            std::string::npos);
  EXPECT_NE(rendered.str().find("workload.compute_cycles"),
            std::string::npos);
}

}  // namespace
