#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

#include "collectives/functional.hpp"
#include "core/planner.hpp"
#include "util/rng.hpp"

namespace pfar::collectives {
namespace {

std::vector<std::vector<std::int64_t>> random_inputs(int n, long long m,
                                                     util::Rng& rng) {
  std::vector<std::vector<std::int64_t>> inputs(static_cast<std::size_t>(n));
  for (auto& vec : inputs) {
    vec.resize(static_cast<std::size_t>(m));
    for (auto& x : vec) x = static_cast<std::int64_t>(rng.next_below(1000));
  }
  return inputs;
}

class FunctionalOnPlans
    : public ::testing::TestWithParam<std::tuple<core::Solution, int>> {};

TEST_P(FunctionalOnPlans, SumMatchesReference) {
  const auto [solution, q] = GetParam();
  if (solution == core::Solution::kLowDepth && q % 2 == 0) GTEST_SKIP();
  const auto plan = core::AllreducePlanner(q).solution(solution).build();
  util::Rng rng(42);
  const long long m = 257;
  const auto inputs = random_inputs(plan.num_nodes(), m, rng);

  FunctionalAllreduce<std::int64_t> ar(
      plan.topology(), plan.trees(),
      [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
  const auto out = ar.run(inputs);

  ASSERT_EQ(static_cast<long long>(out.size()), m);
  for (long long k = 0; k < m; ++k) {
    std::int64_t expected = 0;
    for (const auto& vec : inputs) expected += vec[static_cast<std::size_t>(k)];
    EXPECT_EQ(out[static_cast<std::size_t>(k)], expected) << "k=" << k;
  }
}

TEST_P(FunctionalOnPlans, MinAndMaxOperators) {
  const auto [solution, q] = GetParam();
  if (solution == core::Solution::kLowDepth && q % 2 == 0) GTEST_SKIP();
  const auto plan = core::AllreducePlanner(q).solution(solution).build();
  util::Rng rng(7);
  const auto inputs = random_inputs(plan.num_nodes(), 64, rng);

  FunctionalAllreduce<std::int64_t> armin(
      plan.topology(), plan.trees(),
      [](const std::int64_t& a, const std::int64_t& b) {
        return std::min(a, b);
      });
  FunctionalAllreduce<std::int64_t> armax(
      plan.topology(), plan.trees(),
      [](const std::int64_t& a, const std::int64_t& b) {
        return std::max(a, b);
      });
  const auto lo = armin.run(inputs);
  const auto hi = armax.run(inputs);
  for (long long k = 0; k < 64; ++k) {
    std::int64_t emin = inputs[0][static_cast<std::size_t>(k)], emax = inputs[0][static_cast<std::size_t>(k)];
    for (const auto& vec : inputs) {
      emin = std::min(emin, vec[static_cast<std::size_t>(k)]);
      emax = std::max(emax, vec[static_cast<std::size_t>(k)]);
    }
    EXPECT_EQ(lo[static_cast<std::size_t>(k)], emin);
    EXPECT_EQ(hi[static_cast<std::size_t>(k)], emax);
  }
}

INSTANTIATE_TEST_SUITE_P(
    PlansAndFields, FunctionalOnPlans,
    ::testing::Combine(::testing::Values(core::Solution::kLowDepth,
                                         core::Solution::kEdgeDisjoint,
                                         core::Solution::kSingleTree),
                       ::testing::Values(3, 4, 5, 7, 9)));

TEST(FunctionalTest, FloatAssociationIsDeterministic) {
  // Floating-point sums depend on association; the functional executor
  // must reproduce the router dataflow order deterministically.
  const auto plan = core::AllreducePlanner(5).build();
  util::Rng rng(3);
  std::vector<std::vector<double>> inputs(static_cast<std::size_t>(plan.num_nodes()));
  for (auto& vec : inputs) {
    vec.resize(16);
    for (auto& x : vec) x = rng.next_double();
  }
  FunctionalAllreduce<double> ar(
      plan.topology(), plan.trees(),
      [](const double& a, const double& b) { return a + b; });
  const auto a = ar.run(inputs);
  const auto b = ar.run(inputs);
  EXPECT_EQ(a, b);  // bitwise-identical across runs
  for (std::size_t k = 0; k < a.size(); ++k) {
    double expected = 0;
    for (const auto& vec : inputs) expected += vec[k];
    EXPECT_NEAR(a[k], expected, 1e-9);
  }
}

TEST(FunctionalTest, RejectsBadInputs) {
  const auto plan = core::AllreducePlanner(3).build();
  FunctionalAllreduce<int> ar(plan.topology(), plan.trees(),
                              [](const int& a, const int& b) { return a + b; });
  std::vector<std::vector<int>> wrong_count(3, std::vector<int>(4, 1));
  EXPECT_THROW(ar.run(wrong_count), std::invalid_argument);
  std::vector<std::vector<int>> ragged(static_cast<std::size_t>(plan.num_nodes()),
                                       std::vector<int>(4, 1));
  ragged.back().resize(5);
  EXPECT_THROW(ar.run(ragged), std::invalid_argument);
  EXPECT_THROW(FunctionalAllreduce<int>(
                   plan.topology(), {},
                   [](const int& a, const int& b) { return a + b; }),
               std::invalid_argument);
}

TEST(FunctionalTest, NonCommutativeOperatorFollowsPortOrder) {
  // String concatenation is associative but not commutative: the result is
  // well-defined by the dataflow and must equal a reference computed with
  // the same traversal.
  const auto plan = core::AllreducePlanner(3)
                        .solution(core::Solution::kSingleTree)
                        .build();
  const int n = plan.num_nodes();
  std::vector<std::vector<std::string>> inputs(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    inputs[static_cast<std::size_t>(v)] = {
        std::string(1, static_cast<char>('a' + v % 26))};
  }
  FunctionalAllreduce<std::string> ar(
      plan.topology(), plan.trees(),
      [](const std::string& a, const std::string& b) { return a + b; });
  const auto out = ar.run(inputs);
  // Every node's character appears exactly once.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(static_cast<int>(out[0].size()), n);
  for (int v = 0; v < n; ++v) {
    EXPECT_NE(out[0].find(static_cast<char>('a' + v % 26)), std::string::npos);
  }
}

}  // namespace
}  // namespace pfar::collectives
