#!/usr/bin/env python3
"""Fixture-driven self-tests for tools/check_bench_regression.py.

The checker is the CI bench-regression gate; these tests pin its contract
with synthetic baseline/current pairs so a refactor cannot silently turn
the gate green:

  * exact-field mismatch -> exit 1 (deterministic fields are hard-compared)
  * tolerance edge       -> ratio medians pass inside the band, fail outside
  * missing point        -> exit 1 (a shrunken grid is a regression)
  * schema drift         -> exit 1 (a dropped deterministic field fails,
                            an added field is ignored -- forward compatible)
  * malformed input      -> exit 2 (usage error, distinct from regression)
  * identical runs       -> exit 0

Invoked by ctest as `python3 check_bench_regression_test.py <checker-path>`;
run directly it defaults to the checker next to this file's repo layout.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECKER = None


def baseline_doc():
    return {
        "_meta": {"schema": 1, "commit": "unknown"},
        "threads": 2,
        "total_wall_ms": 100.0,
        "points": [
            {"engine": "horizon", "q": 7, "solution": "low-depth",
             "overlap": "on", "straggler": "none",
             "time_to_epoch": 302742, "overlap_eff": 0.9406,
             "total_flits": 123456, "correct": True,
             "speedup_warm": 10.0, "wall_ms": 50.0},
            {"engine": "horizon", "q": 11, "solution": "low-depth",
             "overlap": "on", "straggler": "none",
             "time_to_epoch": 302076, "overlap_eff": 0.9402,
             "total_flits": 654321, "correct": True,
             "speedup_warm": 12.0, "wall_ms": 60.0},
        ],
    }


def run_checker(base, cur, extra_args=()):
    """Writes both docs to temp files and returns the checker's exit code."""
    with tempfile.TemporaryDirectory() as tmp:
        bpath = os.path.join(tmp, "baseline.json")
        cpath = os.path.join(tmp, "current.json")
        for path, doc in ((bpath, base), (cpath, cur)):
            with open(path, "w") as f:
                if isinstance(doc, str):
                    f.write(doc)
                else:
                    json.dump(doc, f)
        proc = subprocess.run(
            [sys.executable, CHECKER, "--baseline", bpath,
             "--current", cpath, *extra_args],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class CheckBenchRegressionTest(unittest.TestCase):
    def test_identical_runs_pass(self):
        rc, out = run_checker(baseline_doc(), baseline_doc())
        self.assertEqual(rc, 0, out)
        self.assertIn("OK", out)

    def test_exact_field_mismatch_fails(self):
        cur = baseline_doc()
        cur["points"][0]["time_to_epoch"] += 1
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)
        self.assertIn("time_to_epoch", out)

    def test_exact_float_within_print_precision_passes(self):
        # "Exact" floats allow one unit in the last %.4f place (EXACT_REL).
        cur = baseline_doc()
        cur["points"][0]["overlap_eff"] = 0.94065
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 0, out)

    def test_correct_flag_is_a_hard_fail(self):
        cur = baseline_doc()
        cur["points"][1]["correct"] = False
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)
        self.assertIn("correct", out)

    def test_ratio_median_inside_tolerance_passes(self):
        cur = baseline_doc()
        for p in cur["points"]:
            p["speedup_warm"] *= 1.15  # +15% < default +/-20% band
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 0, out)

    def test_ratio_median_outside_tolerance_fails(self):
        cur = baseline_doc()
        for p in cur["points"]:
            p["speedup_warm"] *= 0.5  # fast path stopped being fast
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)
        self.assertIn("speedup_warm", out)

    def test_tighter_tolerance_flag_is_honored(self):
        cur = baseline_doc()
        for p in cur["points"]:
            p["speedup_warm"] *= 1.15
        rc, out = run_checker(baseline_doc(), cur,
                              extra_args=("--tolerance", "0.1"))
        self.assertEqual(rc, 1, out)

    def test_missing_point_fails(self):
        cur = baseline_doc()
        del cur["points"][1]
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)
        self.assertIn("missing", out)

    def test_extra_point_in_current_is_ignored(self):
        # Growing the grid is not a regression; the baseline rules.
        cur = baseline_doc()
        extra = copy.deepcopy(cur["points"][0])
        extra["q"] = 13
        cur["points"].append(extra)
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 0, out)

    def test_schema_drift_dropped_field_fails(self):
        cur = baseline_doc()
        for p in cur["points"]:
            del p["time_to_epoch"]
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)
        self.assertIn("missing from current run", out)

    def test_schema_drift_point_key_change_fails(self):
        # Renaming a key field changes every point's identity: the old
        # points are "missing", which the gate must flag.
        cur = baseline_doc()
        for p in cur["points"]:
            p["straggler"] = "renamed"
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 1, out)

    def test_wall_clock_unchecked_by_default(self):
        cur = baseline_doc()
        cur["total_wall_ms"] = 10000.0
        for p in cur["points"]:
            p["wall_ms"] = 5000.0
        rc, out = run_checker(baseline_doc(), cur)
        self.assertEqual(rc, 0, out)

    def test_wall_clock_runaway_fails_when_opted_in(self):
        cur = baseline_doc()
        cur["total_wall_ms"] = 10000.0
        rc, out = run_checker(baseline_doc(), cur,
                              extra_args=("--wall-tolerance", "3.0"))
        self.assertEqual(rc, 1, out)
        self.assertIn("total_wall_ms", out)

    def test_malformed_current_is_a_usage_error(self):
        rc, out = run_checker(baseline_doc(), "{not json")
        self.assertEqual(rc, 2, out)

    def test_missing_baseline_file_is_a_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            cpath = os.path.join(tmp, "current.json")
            with open(cpath, "w") as f:
                json.dump(baseline_doc(), f)
            proc = subprocess.run(
                [sys.executable, CHECKER, "--baseline",
                 os.path.join(tmp, "nope.json"), "--current", cpath],
                capture_output=True, text=True)
            self.assertEqual(proc.returncode, 2, proc.stderr)


if __name__ == "__main__":
    if len(sys.argv) > 1 and not sys.argv[1].startswith("-"):
        CHECKER = sys.argv.pop(1)
    else:
        CHECKER = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               os.pardir, "tools",
                               "check_bench_regression.py")
    if not os.path.exists(CHECKER):
        print(f"checker not found: {CHECKER}", file=sys.stderr)
        sys.exit(2)
    unittest.main()
