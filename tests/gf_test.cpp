#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "gf/cubic_extension.hpp"
#include "gf/field.hpp"
#include "util/numeric.hpp"

namespace pfar::gf {
namespace {

// Field axioms, exhaustively for small q and spot-checked for larger q.
class FieldAxioms : public ::testing::TestWithParam<int> {};

TEST_P(FieldAxioms, AdditiveGroup) {
  const Field f(GetParam());
  const int q = f.q();
  for (Elem x = 0; x < q; ++x) {
    EXPECT_EQ(f.add(x, 0), x);
    EXPECT_EQ(f.add(x, f.neg(x)), 0);
    for (Elem y = 0; y < q; ++y) {
      EXPECT_EQ(f.add(x, y), f.add(y, x));
    }
  }
}

TEST_P(FieldAxioms, MultiplicativeGroup) {
  const Field f(GetParam());
  const int q = f.q();
  for (Elem x = 1; x < q; ++x) {
    EXPECT_EQ(f.mul(x, 1), x);
    EXPECT_EQ(f.mul(x, f.inv(x)), 1) << "q=" << q << " x=" << x;
    for (Elem y = 0; y < q; ++y) {
      EXPECT_EQ(f.mul(x, y), f.mul(y, x));
    }
  }
  EXPECT_THROW(f.inv(0), std::domain_error);
}

TEST_P(FieldAxioms, Associativity) {
  const Field f(GetParam());
  const int q = f.q();
  // Full cubic loop is fine for q <= 16; sample beyond that.
  const int stride = q <= 16 ? 1 : q / 11;
  for (Elem x = 0; x < q; x += stride) {
    for (Elem y = 0; y < q; y += stride) {
      for (Elem z = 0; z < q; z += stride) {
        EXPECT_EQ(f.add(f.add(x, y), z), f.add(x, f.add(y, z)));
        EXPECT_EQ(f.mul(f.mul(x, y), z), f.mul(x, f.mul(y, z)));
        EXPECT_EQ(f.mul(x, f.add(y, z)), f.add(f.mul(x, y), f.mul(x, z)));
      }
    }
  }
}

TEST_P(FieldAxioms, ExpLogConsistency) {
  const Field f(GetParam());
  const int q = f.q();
  for (Elem x = 1; x < q; ++x) {
    EXPECT_EQ(f.exp(f.log(x)), x);
  }
  // The generator has full order q-1: all powers are distinct.
  std::vector<char> seen(static_cast<std::size_t>(q), 0);
  for (int e = 0; e < q - 1; ++e) {
    const Elem v = f.exp(e);
    EXPECT_NE(v, 0);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST_P(FieldAxioms, FrobeniusIsAdditive) {
  // In characteristic p, (x+y)^p == x^p + y^p.
  const Field f(GetParam());
  const int q = f.q();
  const int p = f.p();
  for (Elem x = 0; x < q; ++x) {
    for (Elem y = 0; y < q; ++y) {
      EXPECT_EQ(f.pow(f.add(x, y), p), f.add(f.pow(x, p), f.pow(y, p)));
    }
  }
}

TEST_P(FieldAxioms, PowMatchesRepeatedMul) {
  const Field f(GetParam());
  const int q = f.q();
  for (Elem x = 1; x < q; ++x) {
    Elem acc = 1;
    for (int e = 0; e <= 5; ++e) {
      EXPECT_EQ(f.pow(x, e), acc);
      acc = f.mul(acc, x);
    }
    // Fermat: x^(q-1) == 1.
    EXPECT_EQ(f.pow(x, q - 1), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallPrimePowers, FieldAxioms,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13, 16,
                                           17, 19, 23, 25, 27, 32, 49, 64, 81,
                                           121, 125, 128));

TEST(FieldTest, RejectsNonPrimePowers) {
  EXPECT_THROW(Field(1), std::invalid_argument);
  EXPECT_THROW(Field(6), std::invalid_argument);
  EXPECT_THROW(Field(12), std::invalid_argument);
  EXPECT_THROW(Field(100), std::invalid_argument);
}

TEST(FieldTest, PrimeFieldIsModularArithmetic) {
  const Field f(13);
  for (Elem x = 0; x < 13; ++x) {
    for (Elem y = 0; y < 13; ++y) {
      EXPECT_EQ(f.add(x, y), (x + y) % 13);
      EXPECT_EQ(f.mul(x, y), (x * y) % 13);
    }
  }
}

TEST(FieldTest, GF4Structure) {
  // F_4 = F_2[x]/(x^2+x+1): elements {0, 1, x, x+1} = {0, 1, 2, 3}.
  const Field f(4);
  EXPECT_EQ(f.p(), 2);
  EXPECT_EQ(f.degree(), 2);
  // x * x = x + 1 (since x^2 = x + 1), i.e. 2 * 2 == 3.
  EXPECT_EQ(f.mul(2, 2), 3);
  // x * (x+1) = x^2 + x = 1.
  EXPECT_EQ(f.mul(2, 3), 1);
  // Addition is XOR of the digit vectors in characteristic 2.
  for (Elem x = 0; x < 4; ++x) {
    for (Elem y = 0; y < 4; ++y) {
      EXPECT_EQ(f.add(x, y), x ^ y);
    }
  }
}

TEST(FieldTest, GF9ModulusIsPrimitive) {
  // Lexicographically smallest primitive quadratic over F_3 is x^2 + x + 2:
  // x^2+1 and x^2+2 either are reducible or have non-primitive root.
  const Field f(9);
  const auto& mod = f.modulus();
  ASSERT_EQ(mod.size(), 3u);
  EXPECT_EQ(mod[2], 1);  // monic
  // Root x (= element 3) must generate all 8 non-zero elements.
  std::vector<char> seen(9, 0);
  Elem cur = 1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(seen[static_cast<std::size_t>(cur)]);
    seen[static_cast<std::size_t>(cur)] = 1;
    cur = f.mul(cur, 3);
  }
  EXPECT_EQ(cur, 1);
}

TEST(FieldTest, DigitExtraction) {
  const Field f(9);  // p = 3
  EXPECT_EQ(f.digit(5, 0), 2);  // 5 = 2 + 1*3
  EXPECT_EQ(f.digit(5, 1), 1);
}

class CubicExtensionTest : public ::testing::TestWithParam<int> {};

TEST_P(CubicExtensionTest, ZetaIsPrimitive) {
  const Field f(GetParam());
  const CubicExtension ext(f);
  const long long order = ext.order();
  EXPECT_EQ(order, static_cast<long long>(f.q()) * f.q() * f.q() - 1);
  // Walk all powers: must not hit 1 before the end, and each triple is
  // unique. (Uniqueness checked cheaply via count of visits.)
  long long count = 0;
  bool hit_one_early = false;
  ext.for_each_power([&](long long l, Elem c2, Elem c1, Elem c0) {
    if (l > 0 && c2 == 0 && c1 == 0 && c0 == 1) hit_one_early = true;
    ++count;
  });
  EXPECT_EQ(count, order);
  EXPECT_FALSE(hit_one_early);
}

TEST_P(CubicExtensionTest, ModulusHasNoRoots) {
  const Field f(GetParam());
  const CubicExtension ext(f);
  const auto [g0, g1, g2] = ext.modulus();
  for (Elem r = 0; r < f.q(); ++r) {
    const Elem r2 = f.mul(r, r);
    Elem v = f.mul(r2, r);
    v = f.add(v, f.mul(g2, r2));
    v = f.add(v, f.mul(g1, r));
    v = f.add(v, g0);
    EXPECT_NE(v, 0) << "root " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallFields, CubicExtensionTest,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 9, 11, 13));

TEST(CubicExtensionTest, KnownModulusForQ3) {
  // For q = 3 the lexicographically smallest primitive cubic is
  // x^3 + 2x + 1 (used to reproduce the paper's D = {0,1,3,9}).
  const Field f(3);
  const CubicExtension ext(f);
  const auto [g0, g1, g2] = ext.modulus();
  EXPECT_EQ(g2, 0);
  EXPECT_EQ(g1, 2);
  EXPECT_EQ(g0, 1);
}

TEST(SharedFieldTest, SameQReturnsSameInstance) {
  const auto a = shared_field(13);
  const auto b = shared_field(13);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_NE(a.get(), shared_field(11).get());
}

TEST(SharedFieldTest, TablesMatchFreshField) {
  for (int q : {2, 3, 4, 7, 9, 16, 27}) {
    const auto shared = shared_field(q);
    const Field fresh(q);
    ASSERT_EQ(shared->q(), fresh.q());
    EXPECT_EQ(shared->generator(), fresh.generator());
    for (Elem a = 0; a < q; ++a) {
      for (Elem b = 0; b < q; ++b) {
        EXPECT_EQ(shared->add(a, b), fresh.add(a, b));
        EXPECT_EQ(shared->mul(a, b), fresh.mul(a, b));
      }
      if (a != 0) {
        EXPECT_EQ(shared->inv(a), fresh.inv(a));
      }
      EXPECT_EQ(shared->neg(a), fresh.neg(a));
    }
  }
}

TEST(SharedFieldTest, StrongCacheKeepsSmallFieldsAlive) {
  const Field* first = shared_field(17).get();  // temporary dropped
  EXPECT_EQ(shared_field(17).get(), first);     // still cached
}

TEST(SharedFieldTest, InvalidOrderStillThrows) {
  EXPECT_THROW(shared_field(6), std::invalid_argument);
  EXPECT_THROW(shared_field(1), std::invalid_argument);
}

TEST(SharedFieldTest, ConcurrentLookupsAgree) {
  // Hammer the cache from several threads; every thread must observe the
  // same instance per q and no data race (vetted under TSan in CI).
  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<const Field*> seen(kThreads * 2, nullptr);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &seen] {
      seen[static_cast<std::size_t>(2 * t)] = shared_field(19).get();
      seen[static_cast<std::size_t>(2 * t + 1)] = shared_field(23).get();
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<std::size_t>(2 * t)], seen[0]);
    EXPECT_EQ(seen[static_cast<std::size_t>(2 * t + 1)], seen[1]);
  }
}

}  // namespace
}  // namespace pfar::gf
