#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "core/resilience.hpp"

namespace pfar::core {
namespace {

TEST(ResilienceTest, RemoveLinksBasics) {
  const auto plan = AllreducePlanner(5).build();
  const graph::Graph& g = plan.topology();
  const graph::Edge victim = g.edge(0);
  const auto residual = remove_links(g, {victim});
  EXPECT_EQ(residual->num_edges(), g.num_edges() - 1);
  EXPECT_FALSE(residual->has_edge(victim.u, victim.v));
  EXPECT_TRUE(residual->is_connected());
  EXPECT_THROW(remove_links(*residual, {victim}), std::invalid_argument);
}

TEST(ResilienceTest, SurvivingTreesDropOnlyAffected) {
  const auto plan = AllreducePlanner(7).build();
  const graph::Graph& g = plan.topology();
  // Fail one edge of tree 0.
  const graph::Edge victim = plan.trees()[0].edges().front();
  const auto survivors = surviving_trees(g, plan.trees(), {victim});
  // Congestion <= 2: at most two trees contain the victim link.
  EXPECT_GE(survivors.size(), plan.trees().size() - 2);
  EXPECT_LT(survivors.size(), plan.trees().size());
  for (const auto& t : survivors) {
    for (const auto& e : t.edges()) EXPECT_NE(e, victim);
  }
}

TEST(ResilienceTest, KeepSurvivingPlanStillWorks) {
  const auto plan = AllreducePlanner(5).build();
  const graph::Edge victim = plan.trees()[0].edges().front();
  const auto degraded =
      degrade_keep_surviving(plan.topology(), plan.trees(), {victim});
  EXPECT_GE(degraded.bandwidths.aggregate, 1.0);
  EXPECT_LT(degraded.bandwidths.aggregate, plan.aggregate_bandwidth());
  // Degraded trees still run a correct Allreduce on the residual network.
  const auto res = collectives::run_innetwork_allreduce(
      *degraded.topology, degraded.trees, 5000, simnet::SimConfig{});
  EXPECT_TRUE(res.sim.values_correct);
}

TEST(ResilienceTest, RepackRecoversMoreBandwidth) {
  const auto plan = AllreducePlanner(7).build();
  // Fail three links touching different trees.
  std::vector<graph::Edge> failed{
      plan.trees()[0].edges()[0],
      plan.trees()[2].edges()[5],
      plan.trees()[4].edges()[9],
  };
  // Deduplicate in case two chosen edges coincide.
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());

  const auto keep =
      degrade_keep_surviving(plan.topology(), plan.trees(), failed);
  const auto repack = degrade_repack(plan.topology(), failed);
  EXPECT_GE(repack.bandwidths.aggregate, keep.bandwidths.aggregate);
  const auto res = collectives::run_innetwork_allreduce(
      *repack.topology, repack.trees, 5000, simnet::SimConfig{});
  EXPECT_TRUE(res.sim.values_correct);
}

TEST(ResilienceTest, RepackHonorsMaxTrees) {
  const auto plan = AllreducePlanner(5).build();
  const auto degraded =
      degrade_repack(plan.topology(), {plan.topology().edge(3)}, 2);
  EXPECT_EQ(degraded.trees.size(), 2u);
}

TEST(ResilienceTest, RepackBandwidthDegradesMonotonically) {
  // As failures accumulate (each failed set a superset of the previous),
  // the repacked aggregate bandwidth must never increase: fewer links can
  // only pack fewer/worse trees. This is the degradation curve the fault
  // benches plot.
  const auto plan = AllreducePlanner(7).build();
  const graph::Graph& g = plan.topology();
  std::vector<graph::Edge> failed;
  double prev = plan.aggregate_bandwidth();
  for (int i = 0; i < 8; ++i) {
    failed.push_back(g.edge((i * 23 + 5) % g.num_edges()));
    std::sort(failed.begin(), failed.end());
    failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
    const auto degraded = degrade_repack(g, failed);
    EXPECT_LE(degraded.bandwidths.aggregate, prev + 1e-9)
        << "after " << failed.size() << " failures";
    EXPECT_GT(degraded.bandwidths.aggregate, 0.0);
    prev = degraded.bandwidths.aggregate;
  }
}

TEST(ResilienceTest, ManyFailuresStayConnected) {
  // ER_q has min degree q: it tolerates many scattered failures. Fail one
  // edge per quadric-ish region and confirm the repack still spans.
  const auto plan = AllreducePlanner(7).build();
  const graph::Graph& g = plan.topology();
  std::vector<graph::Edge> failed;
  for (int i = 0; i < 10; ++i) failed.push_back(g.edge(i * 17 % g.num_edges()));
  std::sort(failed.begin(), failed.end());
  failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
  const auto degraded = degrade_repack(g, failed);
  EXPECT_GE(degraded.trees.size(), 1u);
  for (const auto& t : degraded.trees) {
    EXPECT_TRUE(t.is_spanning_tree_of(*degraded.topology));
  }
}

}  // namespace
}  // namespace pfar::core
