// End-to-end tests for the tools/pfar_audit binary: a freshly serialized
// plan passes the whole battery with exit 0 and an all-pass JSON report; a
// tampered plan exits nonzero and the report names the violated invariant.
//
// The binary path is injected by CMake as PFAR_AUDIT_BINARY.

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "core/serialize.hpp"

namespace fs = std::filesystem;

namespace {

class AuditToolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-process directory: ctest runs each test case as its own process
    // (gtest_discover_tests), and concurrent cases must not remove_all each
    // other's files.
    dir_ = fs::path(::testing::TempDir()) /
           ("pfar_audit_tool_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Runs the audit binary with `args`, captures its report, returns the
  /// process exit code (-1 if the shell invocation itself failed).
  int run_audit(const std::string& args, std::string* report) {
    const fs::path out = dir_ / "report.json";
    const std::string cmd = std::string(PFAR_AUDIT_BINARY) + " " + args +
                            " --out " + out.string() + " 2>/dev/null";
    const int status = std::system(cmd.c_str());
    if (report) {
      std::ifstream in(out);
      std::ostringstream buf;
      buf << in.rdbuf();
      *report = buf.str();
    }
    if (status == -1) return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  fs::path write_plan_file(const std::string& text) {
    const fs::path path = dir_ / "plan.pfar";
    std::ofstream(path, std::ios::binary) << text;
    return path;
  }

  static std::string good_plan_text() {
    const auto plan = pfar::core::AllreducePlanner(7).build();
    return pfar::core::serialize_plan(plan, 0);
  }

  fs::path dir_;
};

TEST_F(AuditToolTest, GoodPlanFilePassesWithExitZero) {
  const fs::path plan = write_plan_file(good_plan_text());
  std::string report;
  const int exit_code = run_audit("--plan " + plan.string(), &report);
  EXPECT_EQ(exit_code, 0) << report;
  EXPECT_NE(report.find("\"ok\": true"), std::string::npos) << report;
  EXPECT_NE(report.find("\"failed\": 0"), std::string::npos) << report;
  // The battery actually ran: the report names the key invariants.
  for (const char* check :
       {"serialize.parse", "trees.spanning", "congestion.recomputed",
        "lemma7_8.opposite_flows", "serialize.roundtrip"}) {
    EXPECT_NE(report.find(check), std::string::npos)
        << "missing check " << check << " in:\n" << report;
  }
}

TEST_F(AuditToolTest, DesignPointBatteryPassesWithExitZero) {
  std::string report;
  const int exit_code = run_audit("--q 7 --solution all", &report);
  EXPECT_EQ(exit_code, 0) << report;
  EXPECT_NE(report.find("\"ok\": true"), std::string::npos) << report;
  for (const char* check :
       {"table1.partition_sizes", "layout.properties_1_to_3",
        "cor7_15.pairwise_edge_disjoint", "bandwidth.claim"}) {
    EXPECT_NE(report.find(check), std::string::npos)
        << "missing check " << check << " in:\n" << report;
  }
}

TEST_F(AuditToolTest, CorruptedBodyFailsChecksumWithNonzeroExit) {
  std::string text = good_plan_text();
  const auto pos = text.find("tree ");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 1] = 'x';  // damage the body without touching the checksum
  const fs::path plan = write_plan_file(text);
  std::string report;
  const int exit_code = run_audit("--plan " + plan.string(), &report);
  EXPECT_NE(exit_code, 0);
  EXPECT_NE(report.find("\"ok\": false"), std::string::npos) << report;
  EXPECT_NE(report.find("serialize.parse"), std::string::npos) << report;
  EXPECT_NE(report.find("checksum mismatch"), std::string::npos) << report;
}

TEST_F(AuditToolTest, TrailingGarbageAfterChecksumIsRejected) {
  const fs::path plan = write_plan_file(good_plan_text() + " \n");
  std::string report;
  const int exit_code = run_audit("--plan " + plan.string(), &report);
  EXPECT_NE(exit_code, 0);
  EXPECT_NE(report.find("trailing content after checksum"),
            std::string::npos)
      << report;
}

TEST_F(AuditToolTest, SemanticTamperWithValidChecksumNamesTheInvariant) {
  // Forge the stored aggregate bandwidth and re-stamp a valid checksum:
  // only the recomputation check can catch this, and it must name itself.
  std::string text = good_plan_text();
  const auto cs_pos = text.rfind("checksum ");
  ASSERT_NE(cs_pos, std::string::npos);
  std::string body = text.substr(0, cs_pos);
  const auto bw_pos = body.rfind("bw ");
  ASSERT_NE(bw_pos, std::string::npos);
  const auto bw_end = body.find(' ', bw_pos + 3);
  ASSERT_NE(bw_end, std::string::npos);
  body = body.substr(0, bw_pos + 3) + "0x1.8p+3" + body.substr(bw_end);
  std::ostringstream cs;
  cs << "checksum " << std::hex << pfar::core::fnv1a64(body) << "\n";
  const fs::path plan = write_plan_file(body + cs.str());

  std::string report;
  const int exit_code = run_audit("--plan " + plan.string(), &report);
  EXPECT_NE(exit_code, 0);
  EXPECT_NE(report.find("\"ok\": false"), std::string::npos) << report;
  EXPECT_NE(report.find("bandwidth.claim"), std::string::npos) << report;
  // The checksum itself was valid, so parsing must have succeeded.
  EXPECT_NE(report.find("{\"name\": \"serialize.parse\", \"pass\": true"),
            std::string::npos)
      << report;
}

TEST_F(AuditToolTest, UsageErrorsExitWithTwo) {
  std::string report;
  EXPECT_EQ(run_audit("--q 7 --solution bogus", &report), 2);
  EXPECT_EQ(run_audit("--plan " + (dir_ / "missing.pfar").string(), &report),
            2);
}

}  // namespace
