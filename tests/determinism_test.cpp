// Determinism guarantees of the performance machinery added for the sweep
// engine:
//
//  * core::SweepRunner produces identical result vectors no matter how
//    many worker threads execute the sweep (per-task seeding, order-stable
//    collection);
//  * the fast-forward simulator engine reproduces the reference engine's
//    SimResult exactly — cycles, per-link flit counts, tree finish/first-
//    delivery cycles, occupancy maxima, correctness — across all three
//    collective modes and the stressful corners of the config space;
//  * both engines still match golden values captured from the original
//    cycle-by-cycle implementation, pinning the whole lineage.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "core/sweep_runner.hpp"
#include "simnet/allreduce_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace pfar;

// --- SweepRunner ----------------------------------------------------------

std::vector<std::uint64_t> run_sweep(int threads) {
  core::SweepRunner runner(threads, /*base_seed=*/42);
  return runner.map<std::uint64_t>(24, [](const core::SweepTask& task) {
    // Mix the task seed through a private RNG: any dependence on thread
    // identity or completion order would desynchronize the streams.
    util::Rng rng(task.seed);
    std::uint64_t acc = static_cast<std::uint64_t>(task.index);
    for (int i = 0; i < 1000; ++i) acc = acc * 31 + rng.next();
    return acc;
  });
}

TEST(SweepRunner, ThreadCountDoesNotChangeResults) {
  const auto serial = run_sweep(1);
  ASSERT_EQ(serial.size(), 24u);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run_sweep(threads), serial) << "threads=" << threads;
  }
}

TEST(SweepRunner, TaskSeedsAreDistinctAndIndexDerived) {
  const std::uint64_t a0 = core::SweepRunner::task_seed(7, 0);
  const std::uint64_t a1 = core::SweepRunner::task_seed(7, 1);
  const std::uint64_t b0 = core::SweepRunner::task_seed(8, 0);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a0, b0);
  // Pure function of (base_seed, index).
  EXPECT_EQ(a0, core::SweepRunner::task_seed(7, 0));
}

TEST(SweepRunner, PropagatesFirstTaskException) {
  core::SweepRunner runner(4);
  EXPECT_THROW(
      runner.for_each(16,
                      [](const core::SweepTask& task) {
                        if (task.index == 11) {
                          throw std::runtime_error("task 11 failed");
                        }
                      }),
      std::runtime_error);
}

// --- Fast-forward engine vs reference engine ------------------------------

simnet::SimResult run_engine(int q, core::Solution sol,
                             simnet::SimConfig cfg, long long m,
                             simnet::SimEngine engine) {
  cfg.engine = engine;
  const auto plan = core::AllreducePlanner(q).solution(sol).build();
  auto embeddings = collectives::to_embeddings(plan.trees());
  simnet::AllreduceSimulator sim(plan.topology(), embeddings, cfg);
  return sim.run(plan.split(m));
}

void expect_identical(int q, core::Solution sol, const simnet::SimConfig& cfg,
                      long long m) {
  const auto fast =
      run_engine(q, sol, cfg, m, simnet::SimEngine::kFastForward);
  const auto ref = run_engine(q, sol, cfg, m, simnet::SimEngine::kReference);
  EXPECT_EQ(fast.cycles, ref.cycles);
  EXPECT_EQ(fast.total_elements, ref.total_elements);
  EXPECT_EQ(fast.values_correct, ref.values_correct);
  EXPECT_EQ(fast.num_vcs, ref.num_vcs);
  EXPECT_EQ(fast.max_vcs_per_link, ref.max_vcs_per_link);
  EXPECT_EQ(fast.max_reductions_per_input_port,
            ref.max_reductions_per_input_port);
  EXPECT_EQ(fast.max_vc_occupancy, ref.max_vc_occupancy);
  EXPECT_EQ(fast.link_flits, ref.link_flits);
  EXPECT_EQ(fast.link_queue_hwm, ref.link_queue_hwm);
  EXPECT_EQ(fast.link_bg_flits, ref.link_bg_flits);
  EXPECT_EQ(fast.background_packets, ref.background_packets);
  EXPECT_EQ(fast.background_flits, ref.background_flits);
  EXPECT_EQ(fast.tree_finish_cycle, ref.tree_finish_cycle);
  EXPECT_EQ(fast.tree_first_delivery, ref.tree_first_delivery);
  EXPECT_DOUBLE_EQ(fast.aggregate_bandwidth, ref.aggregate_bandwidth);
}

// Full bit-identity between two runs (same engine or different): every
// field that run() fills, including the background-traffic accounting.
void expect_same_result(const simnet::SimResult& a,
                        const simnet::SimResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.total_elements, b.total_elements);
  EXPECT_EQ(a.values_correct, b.values_correct);
  EXPECT_EQ(a.max_vc_occupancy, b.max_vc_occupancy);
  EXPECT_EQ(a.link_flits, b.link_flits);
  EXPECT_EQ(a.link_queue_hwm, b.link_queue_hwm);
  EXPECT_EQ(a.link_bg_flits, b.link_bg_flits);
  EXPECT_EQ(a.background_packets, b.background_packets);
  EXPECT_EQ(a.background_flits, b.background_flits);
  EXPECT_EQ(a.tree_finish_cycle, b.tree_finish_cycle);
  EXPECT_EQ(a.tree_first_delivery, b.tree_first_delivery);
  EXPECT_DOUBLE_EQ(a.aggregate_bandwidth, b.aggregate_bandwidth);
}

TEST(FastForwardEngine, MatchesReferenceAcrossCollectiveModes) {
  for (const auto mode :
       {simnet::Collective::kAllreduce, simnet::Collective::kReduce,
        simnet::Collective::kBroadcast}) {
    for (const int payload : {1, 4}) {
      simnet::SimConfig cfg;
      cfg.collective = mode;
      cfg.packet_payload = payload;
      cfg.packet_header_flits = payload == 1 ? 0 : 1;
      expect_identical(3, core::Solution::kLowDepth, cfg, 600);
      expect_identical(3, core::Solution::kEdgeDisjoint, cfg, 600);
      expect_identical(5, core::Solution::kSingleTree, cfg, 600);
    }
  }
}

TEST(FastForwardEngine, MatchesReferenceInStressCorners) {
  {
    simnet::SimConfig cfg;  // tight credits, long latency: stall-heavy
    cfg.vc_credits = 2;
    cfg.link_latency = 8;
    expect_identical(5, core::Solution::kLowDepth, cfg, 400);
  }
  {
    simnet::SimConfig cfg;  // wide links, zero latency
    cfg.link_bandwidth = 2;
    cfg.vc_credits = 32;
    cfg.link_latency = 0;
    expect_identical(5, core::Solution::kEdgeDisjoint, cfg, 400);
  }
  {
    simnet::SimConfig cfg;  // fork-buffer pressure + framing
    cfg.fork_buffer = 1;
    cfg.packet_payload = 8;
    cfg.packet_header_flits = 2;
    expect_identical(7, core::Solution::kLowDepth, cfg, 800);
  }
}

// --- Background traffic (docs/congestion_adaptation.md) -------------------

// A BackgroundTraffic block with load == 0 must be a true no-op: the run is
// bit-identical to one whose config never mentioned background traffic at
// all, on both cycle engines and at every shard count. This is the
// differential that lets the quiet goldens above keep pinning the lineage.
TEST(BackgroundTraffic, ZeroLoadIsBitIdenticalToQuiet) {
  for (const auto engine :
       {simnet::SimEngine::kFastForward, simnet::SimEngine::kReference}) {
    for (const int shards : {1, 2, 4}) {
      simnet::SimConfig quiet;
      quiet.shard_threads = shards;
      simnet::SimConfig zero = quiet;
      zero.background.pattern = simnet::TrafficPattern::kPermutation;
      zero.background.load = 0.0;  // configured but inactive
      zero.background.seed = 99;
      const auto a =
          run_engine(5, core::Solution::kLowDepth, quiet, 800, engine);
      const auto b =
          run_engine(5, core::Solution::kLowDepth, zero, 800, engine);
      expect_same_result(a, b);
      EXPECT_EQ(b.background_flits, 0);
      EXPECT_EQ(b.background_packets, 0);
      for (long long f : b.link_bg_flits) EXPECT_EQ(f, 0);
    }
  }
}

// Under live background traffic the fast-forward engine must still replay
// the reference engine exactly — the background drains are integer-rational
// (ppm accumulators) and the idle-jump wake points account for them.
TEST(BackgroundTraffic, FastMatchesReferenceAcrossPatternsAndLoads) {
  for (const auto pattern :
       {simnet::TrafficPattern::kUniform, simnet::TrafficPattern::kPermutation,
        simnet::TrafficPattern::kHotspot}) {
    for (const double load : {0.1, 0.25, 0.5}) {
      simnet::SimConfig cfg;
      cfg.background.pattern = pattern;
      cfg.background.load = load;
      cfg.background.seed = 7;
      cfg.background.hotspot_fraction = 0.25;
      expect_identical(5, core::Solution::kLowDepth, cfg, 600);
      expect_identical(5, core::Solution::kEdgeDisjoint, cfg, 600);
    }
  }
}

// Background traffic composes with the stressful config corners the quiet
// differential matrix covers.
TEST(BackgroundTraffic, FastMatchesReferenceInStressCorners) {
  {
    simnet::SimConfig cfg;  // tight credits + long latency + hotspot bg
    cfg.vc_credits = 2;
    cfg.link_latency = 8;
    cfg.background.pattern = simnet::TrafficPattern::kHotspot;
    cfg.background.load = 0.4;
    expect_identical(5, core::Solution::kLowDepth, cfg, 400);
  }
  {
    simnet::SimConfig cfg;  // wide links + permutation bg + framing
    cfg.link_bandwidth = 2;
    cfg.packet_payload = 4;
    cfg.packet_header_flits = 1;
    cfg.background.pattern = simnet::TrafficPattern::kPermutation;
    cfg.background.load = 0.5;
    cfg.background.seed = 3;
    expect_identical(7, core::Solution::kEdgeDisjoint, cfg, 800);
  }
}

// The sharded fast path under background load must reproduce the serial
// run bit-for-bit: the telescoping closed form makes per-shard background
// accounting independent of where the cycle range is cut.
TEST(BackgroundTraffic, ShardedMatchesSerial) {
  simnet::SimConfig serial;
  serial.background.pattern = simnet::TrafficPattern::kPermutation;
  serial.background.load = 0.3;
  serial.background.seed = 7;
  const auto base = run_engine(7, core::Solution::kLowDepth, serial, 2000,
                               simnet::SimEngine::kFastForward);
  EXPECT_GT(base.background_flits, 0);
  for (const int shards : {2, 3, 8}) {
    simnet::SimConfig cfg = serial;
    cfg.shard_threads = shards;
    const auto sharded = run_engine(7, core::Solution::kLowDepth, cfg, 2000,
                                    simnet::SimEngine::kFastForward);
    expect_same_result(base, sharded);
  }
}

// --- Golden values from the original implementation -----------------------

std::uint64_t fnv(const std::vector<long long>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (long long x : v) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 1099511628211ULL;
  }
  return h;
}

struct Golden {
  const char* name;
  int q;
  core::Solution sol;
  simnet::Collective mode;
  int payload;
  int header;
  long long m;
  // Expected values captured from the pre-fast-forward implementation.
  long long cycles;
  int occupancy;
  std::uint64_t link_flits_hash;
  std::uint64_t finish_hash;
  std::uint64_t first_hash;
};

TEST(FastForwardEngine, MatchesGoldenValuesFromSeedImplementation) {
  const Golden goldens[] = {
      {"q3_ld_allreduce", 3, core::Solution::kLowDepth,
       simnet::Collective::kAllreduce, 1, 0, 600, 416, 9,
       16968771372679624195ULL, 9110279880017709470ULL,
       1228718878961412657ULL},
      {"q3_ed_allreduce", 3, core::Solution::kEdgeDisjoint,
       simnet::Collective::kAllreduce, 1, 0, 600, 348, 1,
       2242625126560894851ULL, 10962671891925027081ULL,
       11149429439497907611ULL},
      {"q5_st_allreduce_p4", 5, core::Solution::kSingleTree,
       simnet::Collective::kAllreduce, 4, 1, 600, 762, 1,
       13528660941121534451ULL, 4952590511094989390ULL,
       4953172152746313009ULL},
      {"q3_ld_reduce", 3, core::Solution::kLowDepth,
       simnet::Collective::kReduce, 1, 0, 600, 212, 9,
       12359465448692625459ULL, 17061978783806592578ULL,
       1228718878961412657ULL},
      {"q3_ld_broadcast", 3, core::Solution::kLowDepth,
       simnet::Collective::kBroadcast, 1, 0, 600, 212, 1,
       6138104403299626419ULL, 17061978783806592578ULL,
       12196949897413546625ULL},
  };
  for (const auto& g : goldens) {
    simnet::SimConfig cfg;
    cfg.collective = g.mode;
    cfg.packet_payload = g.payload;
    cfg.packet_header_flits = g.header;
    for (const auto engine :
         {simnet::SimEngine::kFastForward, simnet::SimEngine::kReference}) {
      const auto r = run_engine(g.q, g.sol, cfg, g.m, engine);
      EXPECT_EQ(r.cycles, g.cycles) << g.name;
      EXPECT_TRUE(r.values_correct) << g.name;
      EXPECT_EQ(r.max_vc_occupancy, g.occupancy) << g.name;
      EXPECT_EQ(fnv(r.link_flits), g.link_flits_hash) << g.name;
      EXPECT_EQ(fnv(r.tree_finish_cycle), g.finish_hash) << g.name;
      EXPECT_EQ(fnv(r.tree_first_delivery), g.first_hash) << g.name;
    }
  }
}

// --- Simulator sweeps under the runner (thread-safety of simulate()) ------

TEST(SweepRunner, ParallelSimulationsMatchSerial) {
  const auto plan = core::AllreducePlanner(3).build();
  const auto run_with = [&](int threads) {
    core::SweepRunner runner(threads);
    return runner.map<long long>(6, [&](const core::SweepTask& task) {
      simnet::SimConfig cfg;
      cfg.packet_payload = 1 + task.index % 3;
      cfg.vc_credits = 4 + 4 * (task.index / 3);
      const auto res = plan.simulate(400, cfg);
      EXPECT_TRUE(res.sim.values_correct);
      return res.sim.cycles;
    });
  };
  EXPECT_EQ(run_with(4), run_with(1));
}

}  // namespace
