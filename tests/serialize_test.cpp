#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "core/serialize.hpp"

namespace pfar::core {
namespace {

TEST(SerializeTest, RoundTripLowDepth) {
  const auto plan = AllreducePlanner(5).build();
  const std::string text = serialize_trees(plan.q(), plan.trees());
  const auto parsed = parse_trees(text);
  EXPECT_EQ(parsed.q, 5);
  ASSERT_EQ(parsed.trees.size(), plan.trees().size());
  for (std::size_t i = 0; i < parsed.trees.size(); ++i) {
    EXPECT_EQ(parsed.trees[i].root(), plan.trees()[i].root());
    EXPECT_EQ(parsed.trees[i].parents(), plan.trees()[i].parents());
    EXPECT_TRUE(parsed.trees[i].is_spanning_tree_of(plan.topology()));
  }
}

TEST(SerializeTest, RoundTripEdgeDisjoint) {
  const auto plan =
      AllreducePlanner(4).solution(Solution::kEdgeDisjoint).build();
  const auto parsed = parse_trees(serialize_trees(plan.q(), plan.trees()));
  EXPECT_EQ(parsed.q, 4);
  EXPECT_EQ(parsed.trees.size(), 2u);
  EXPECT_EQ(parsed.trees[0].depth(), plan.trees()[0].depth());
}

TEST(SerializeTest, FormatIsStable) {
  const auto plan = AllreducePlanner(3).build();
  const std::string text = serialize_trees(3, plan.trees());
  EXPECT_EQ(text.rfind("pfar-trees 1\nq 3\nn 13\ntrees 3\n", 0), 0u);
}

TEST(SerializeTest, ParserRejectsMalformedInput) {
  const auto plan = AllreducePlanner(3).build();
  const std::string good = serialize_trees(3, plan.trees());

  EXPECT_THROW(parse_trees(""), std::invalid_argument);
  EXPECT_THROW(parse_trees("wrong-magic 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_trees("pfar-trees 2\n"), std::invalid_argument);
  EXPECT_THROW(parse_trees("pfar-trees 1\nq 1\n"), std::invalid_argument);
  EXPECT_THROW(parse_trees(good + " extra"), std::invalid_argument);

  // Truncated parent list.
  const std::string truncated = good.substr(0, good.size() - 10);
  EXPECT_THROW(parse_trees(truncated), std::invalid_argument);

  // Out-of-range parent.
  std::string corrupted = good;
  corrupted.replace(corrupted.find("tree "), 6, "tree 99");
  EXPECT_THROW(parse_trees(corrupted), std::invalid_argument);
}

TEST(SerializeTest, ParserRejectsCyclicTree) {
  // Hand-written input whose parent vector contains a 2-cycle.
  const std::string text =
      "pfar-trees 1\nq 3\nn 4\ntrees 1\ntree 0 -1 2 1 0\n";
  EXPECT_THROW(parse_trees(text), std::invalid_argument);
}

TEST(SerializeTest, RejectsEmptySet) {
  EXPECT_THROW(serialize_trees(3, {}), std::invalid_argument);
}

// Regression: parse_plan used to accept any trailing bytes after the
// checksum line as long as they were pure whitespace, so an appended-to
// (tampered) artifact still round-tripped. The checksum line must now be
// the byte-exact final line.
TEST(SerializeTest, PlanRejectsWhitespaceAfterChecksum) {
  const std::string good = serialize_plan(AllreducePlanner(3).build(), 0);
  ASSERT_NO_THROW(parse_plan(good));

  for (const std::string& tail :
       {std::string(" "), std::string("\n"), std::string(" \n"),
        std::string("\t"), std::string("\n\n"), std::string("   \t \n")}) {
    EXPECT_THROW(parse_plan(good + tail), std::invalid_argument)
        << "accepted trailing bytes: " << ::testing::PrintToString(tail);
  }
}

TEST(SerializeTest, PlanRejectsContentAfterChecksum) {
  const std::string good = serialize_plan(AllreducePlanner(3).build(), 0);
  EXPECT_THROW(parse_plan(good + "extra"), std::invalid_argument);
  EXPECT_THROW(parse_plan(good + "checksum 0\n"), std::invalid_argument);
  // Missing the final newline is also a framing violation.
  EXPECT_THROW(parse_plan(good.substr(0, good.size() - 1)),
               std::invalid_argument);
}

}  // namespace
}  // namespace pfar::core
