file(REMOVE_RECURSE
  "CMakeFiles/polarfly_test.dir/polarfly_test.cpp.o"
  "CMakeFiles/polarfly_test.dir/polarfly_test.cpp.o.d"
  "polarfly_test"
  "polarfly_test.pdb"
  "polarfly_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polarfly_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
