# Empty compiler generated dependencies file for polarfly_test.
# This may be replaced when dependencies are built.
