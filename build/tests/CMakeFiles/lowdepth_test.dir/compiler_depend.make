# Empty compiler generated dependencies file for lowdepth_test.
# This may be replaced when dependencies are built.
