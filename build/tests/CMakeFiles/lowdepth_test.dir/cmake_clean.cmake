file(REMOVE_RECURSE
  "CMakeFiles/lowdepth_test.dir/lowdepth_test.cpp.o"
  "CMakeFiles/lowdepth_test.dir/lowdepth_test.cpp.o.d"
  "lowdepth_test"
  "lowdepth_test.pdb"
  "lowdepth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lowdepth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
