file(REMOVE_RECURSE
  "CMakeFiles/logical_test.dir/logical_test.cpp.o"
  "CMakeFiles/logical_test.dir/logical_test.cpp.o.d"
  "logical_test"
  "logical_test.pdb"
  "logical_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logical_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
