file(REMOVE_RECURSE
  "CMakeFiles/section73_test.dir/section73_test.cpp.o"
  "CMakeFiles/section73_test.dir/section73_test.cpp.o.d"
  "section73_test"
  "section73_test.pdb"
  "section73_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/section73_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
