# Empty compiler generated dependencies file for section73_test.
# This may be replaced when dependencies are built.
