# Empty compiler generated dependencies file for evenq_test.
# This may be replaced when dependencies are built.
