file(REMOVE_RECURSE
  "CMakeFiles/evenq_test.dir/evenq_test.cpp.o"
  "CMakeFiles/evenq_test.dir/evenq_test.cpp.o.d"
  "evenq_test"
  "evenq_test.pdb"
  "evenq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evenq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
