# Empty dependencies file for simnet_modes_test.
# This may be replaced when dependencies are built.
