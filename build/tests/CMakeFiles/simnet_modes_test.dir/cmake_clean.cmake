file(REMOVE_RECURSE
  "CMakeFiles/simnet_modes_test.dir/simnet_modes_test.cpp.o"
  "CMakeFiles/simnet_modes_test.dir/simnet_modes_test.cpp.o.d"
  "simnet_modes_test"
  "simnet_modes_test.pdb"
  "simnet_modes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simnet_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
