# Empty dependencies file for projective_plane_test.
# This may be replaced when dependencies are built.
