file(REMOVE_RECURSE
  "CMakeFiles/projective_plane_test.dir/projective_plane_test.cpp.o"
  "CMakeFiles/projective_plane_test.dir/projective_plane_test.cpp.o.d"
  "projective_plane_test"
  "projective_plane_test.pdb"
  "projective_plane_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/projective_plane_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
