# Empty dependencies file for bucket_schedule_test.
# This may be replaced when dependencies are built.
