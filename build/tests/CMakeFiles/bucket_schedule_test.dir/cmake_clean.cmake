file(REMOVE_RECURSE
  "CMakeFiles/bucket_schedule_test.dir/bucket_schedule_test.cpp.o"
  "CMakeFiles/bucket_schedule_test.dir/bucket_schedule_test.cpp.o.d"
  "bucket_schedule_test"
  "bucket_schedule_test.pdb"
  "bucket_schedule_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bucket_schedule_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
