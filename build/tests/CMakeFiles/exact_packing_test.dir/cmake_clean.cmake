file(REMOVE_RECURSE
  "CMakeFiles/exact_packing_test.dir/exact_packing_test.cpp.o"
  "CMakeFiles/exact_packing_test.dir/exact_packing_test.cpp.o.d"
  "exact_packing_test"
  "exact_packing_test.pdb"
  "exact_packing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exact_packing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
