# Empty dependencies file for exact_packing_test.
# This may be replaced when dependencies are built.
