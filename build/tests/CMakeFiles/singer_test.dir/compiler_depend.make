# Empty compiler generated dependencies file for singer_test.
# This may be replaced when dependencies are built.
