file(REMOVE_RECURSE
  "CMakeFiles/singer_test.dir/singer_test.cpp.o"
  "CMakeFiles/singer_test.dir/singer_test.cpp.o.d"
  "singer_test"
  "singer_test.pdb"
  "singer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/singer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
