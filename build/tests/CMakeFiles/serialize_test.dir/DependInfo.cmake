
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/serialize_test.cpp" "tests/CMakeFiles/serialize_test.dir/serialize_test.cpp.o" "gcc" "tests/CMakeFiles/serialize_test.dir/serialize_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/topo/CMakeFiles/pfar_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/pfar_core.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/pfar_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/pfar_model.dir/DependInfo.cmake"
  "/root/repo/build/src/trees/CMakeFiles/pfar_trees.dir/DependInfo.cmake"
  "/root/repo/build/src/polarfly/CMakeFiles/pfar_polarfly.dir/DependInfo.cmake"
  "/root/repo/build/src/singer/CMakeFiles/pfar_singer.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/pfar_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/pfar_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pfar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
