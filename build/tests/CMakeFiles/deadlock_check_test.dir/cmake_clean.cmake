file(REMOVE_RECURSE
  "CMakeFiles/deadlock_check_test.dir/deadlock_check_test.cpp.o"
  "CMakeFiles/deadlock_check_test.dir/deadlock_check_test.cpp.o.d"
  "deadlock_check_test"
  "deadlock_check_test.pdb"
  "deadlock_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
