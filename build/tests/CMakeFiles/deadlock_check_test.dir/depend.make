# Empty dependencies file for deadlock_check_test.
# This may be replaced when dependencies are built.
