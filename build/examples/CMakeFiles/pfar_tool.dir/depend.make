# Empty dependencies file for pfar_tool.
# This may be replaced when dependencies are built.
