file(REMOVE_RECURSE
  "CMakeFiles/pfar_tool.dir/pfar_tool.cpp.o"
  "CMakeFiles/pfar_tool.dir/pfar_tool.cpp.o.d"
  "pfar_tool"
  "pfar_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
