file(REMOVE_RECURSE
  "CMakeFiles/hpc_latency.dir/hpc_latency.cpp.o"
  "CMakeFiles/hpc_latency.dir/hpc_latency.cpp.o.d"
  "hpc_latency"
  "hpc_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpc_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
