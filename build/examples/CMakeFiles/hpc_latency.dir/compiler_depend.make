# Empty compiler generated dependencies file for hpc_latency.
# This may be replaced when dependencies are built.
