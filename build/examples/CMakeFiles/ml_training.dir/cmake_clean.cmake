file(REMOVE_RECURSE
  "CMakeFiles/ml_training.dir/ml_training.cpp.o"
  "CMakeFiles/ml_training.dir/ml_training.cpp.o.d"
  "ml_training"
  "ml_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
