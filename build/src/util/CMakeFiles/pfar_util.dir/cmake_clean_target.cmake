file(REMOVE_RECURSE
  "libpfar_util.a"
)
