file(REMOVE_RECURSE
  "CMakeFiles/pfar_util.dir/args.cpp.o"
  "CMakeFiles/pfar_util.dir/args.cpp.o.d"
  "CMakeFiles/pfar_util.dir/numeric.cpp.o"
  "CMakeFiles/pfar_util.dir/numeric.cpp.o.d"
  "CMakeFiles/pfar_util.dir/table.cpp.o"
  "CMakeFiles/pfar_util.dir/table.cpp.o.d"
  "libpfar_util.a"
  "libpfar_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
