# Empty dependencies file for pfar_util.
# This may be replaced when dependencies are built.
