# Empty dependencies file for pfar_collectives.
# This may be replaced when dependencies are built.
