file(REMOVE_RECURSE
  "libpfar_collectives.a"
)
