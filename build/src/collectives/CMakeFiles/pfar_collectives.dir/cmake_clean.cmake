file(REMOVE_RECURSE
  "CMakeFiles/pfar_collectives.dir/bucket_schedule.cpp.o"
  "CMakeFiles/pfar_collectives.dir/bucket_schedule.cpp.o.d"
  "CMakeFiles/pfar_collectives.dir/host_allreduce.cpp.o"
  "CMakeFiles/pfar_collectives.dir/host_allreduce.cpp.o.d"
  "CMakeFiles/pfar_collectives.dir/innetwork.cpp.o"
  "CMakeFiles/pfar_collectives.dir/innetwork.cpp.o.d"
  "CMakeFiles/pfar_collectives.dir/logical.cpp.o"
  "CMakeFiles/pfar_collectives.dir/logical.cpp.o.d"
  "CMakeFiles/pfar_collectives.dir/routed.cpp.o"
  "CMakeFiles/pfar_collectives.dir/routed.cpp.o.d"
  "libpfar_collectives.a"
  "libpfar_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
