# Empty dependencies file for pfar_simnet.
# This may be replaced when dependencies are built.
