file(REMOVE_RECURSE
  "libpfar_simnet.a"
)
