file(REMOVE_RECURSE
  "CMakeFiles/pfar_simnet.dir/allreduce_sim.cpp.o"
  "CMakeFiles/pfar_simnet.dir/allreduce_sim.cpp.o.d"
  "CMakeFiles/pfar_simnet.dir/deadlock_check.cpp.o"
  "CMakeFiles/pfar_simnet.dir/deadlock_check.cpp.o.d"
  "CMakeFiles/pfar_simnet.dir/traffic_sim.cpp.o"
  "CMakeFiles/pfar_simnet.dir/traffic_sim.cpp.o.d"
  "libpfar_simnet.a"
  "libpfar_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
