
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/allreduce_sim.cpp" "src/simnet/CMakeFiles/pfar_simnet.dir/allreduce_sim.cpp.o" "gcc" "src/simnet/CMakeFiles/pfar_simnet.dir/allreduce_sim.cpp.o.d"
  "/root/repo/src/simnet/deadlock_check.cpp" "src/simnet/CMakeFiles/pfar_simnet.dir/deadlock_check.cpp.o" "gcc" "src/simnet/CMakeFiles/pfar_simnet.dir/deadlock_check.cpp.o.d"
  "/root/repo/src/simnet/traffic_sim.cpp" "src/simnet/CMakeFiles/pfar_simnet.dir/traffic_sim.cpp.o" "gcc" "src/simnet/CMakeFiles/pfar_simnet.dir/traffic_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/pfar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
