file(REMOVE_RECURSE
  "libpfar_graph.a"
)
