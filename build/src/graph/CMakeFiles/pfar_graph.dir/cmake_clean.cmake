file(REMOVE_RECURSE
  "CMakeFiles/pfar_graph.dir/graph.cpp.o"
  "CMakeFiles/pfar_graph.dir/graph.cpp.o.d"
  "CMakeFiles/pfar_graph.dir/matching.cpp.o"
  "CMakeFiles/pfar_graph.dir/matching.cpp.o.d"
  "libpfar_graph.a"
  "libpfar_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
