# Empty compiler generated dependencies file for pfar_graph.
# This may be replaced when dependencies are built.
