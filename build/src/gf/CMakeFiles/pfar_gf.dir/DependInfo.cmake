
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gf/cubic_extension.cpp" "src/gf/CMakeFiles/pfar_gf.dir/cubic_extension.cpp.o" "gcc" "src/gf/CMakeFiles/pfar_gf.dir/cubic_extension.cpp.o.d"
  "/root/repo/src/gf/field.cpp" "src/gf/CMakeFiles/pfar_gf.dir/field.cpp.o" "gcc" "src/gf/CMakeFiles/pfar_gf.dir/field.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
