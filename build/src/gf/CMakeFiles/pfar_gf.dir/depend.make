# Empty dependencies file for pfar_gf.
# This may be replaced when dependencies are built.
