file(REMOVE_RECURSE
  "CMakeFiles/pfar_gf.dir/cubic_extension.cpp.o"
  "CMakeFiles/pfar_gf.dir/cubic_extension.cpp.o.d"
  "CMakeFiles/pfar_gf.dir/field.cpp.o"
  "CMakeFiles/pfar_gf.dir/field.cpp.o.d"
  "libpfar_gf.a"
  "libpfar_gf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_gf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
