file(REMOVE_RECURSE
  "libpfar_gf.a"
)
