file(REMOVE_RECURSE
  "libpfar_singer.a"
)
