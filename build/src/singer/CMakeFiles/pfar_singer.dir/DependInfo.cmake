
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/singer/difference_set.cpp" "src/singer/CMakeFiles/pfar_singer.dir/difference_set.cpp.o" "gcc" "src/singer/CMakeFiles/pfar_singer.dir/difference_set.cpp.o.d"
  "/root/repo/src/singer/disjoint.cpp" "src/singer/CMakeFiles/pfar_singer.dir/disjoint.cpp.o" "gcc" "src/singer/CMakeFiles/pfar_singer.dir/disjoint.cpp.o.d"
  "/root/repo/src/singer/paths.cpp" "src/singer/CMakeFiles/pfar_singer.dir/paths.cpp.o" "gcc" "src/singer/CMakeFiles/pfar_singer.dir/paths.cpp.o.d"
  "/root/repo/src/singer/singer_graph.cpp" "src/singer/CMakeFiles/pfar_singer.dir/singer_graph.cpp.o" "gcc" "src/singer/CMakeFiles/pfar_singer.dir/singer_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/pfar_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pfar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
