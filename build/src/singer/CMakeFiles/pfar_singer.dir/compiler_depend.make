# Empty compiler generated dependencies file for pfar_singer.
# This may be replaced when dependencies are built.
