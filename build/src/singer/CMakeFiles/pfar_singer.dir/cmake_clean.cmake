file(REMOVE_RECURSE
  "CMakeFiles/pfar_singer.dir/difference_set.cpp.o"
  "CMakeFiles/pfar_singer.dir/difference_set.cpp.o.d"
  "CMakeFiles/pfar_singer.dir/disjoint.cpp.o"
  "CMakeFiles/pfar_singer.dir/disjoint.cpp.o.d"
  "CMakeFiles/pfar_singer.dir/paths.cpp.o"
  "CMakeFiles/pfar_singer.dir/paths.cpp.o.d"
  "CMakeFiles/pfar_singer.dir/singer_graph.cpp.o"
  "CMakeFiles/pfar_singer.dir/singer_graph.cpp.o.d"
  "libpfar_singer.a"
  "libpfar_singer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_singer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
