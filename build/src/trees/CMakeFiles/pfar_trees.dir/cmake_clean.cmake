file(REMOVE_RECURSE
  "CMakeFiles/pfar_trees.dir/exact_packing.cpp.o"
  "CMakeFiles/pfar_trees.dir/exact_packing.cpp.o.d"
  "CMakeFiles/pfar_trees.dir/hamiltonian.cpp.o"
  "CMakeFiles/pfar_trees.dir/hamiltonian.cpp.o.d"
  "CMakeFiles/pfar_trees.dir/low_depth.cpp.o"
  "CMakeFiles/pfar_trees.dir/low_depth.cpp.o.d"
  "CMakeFiles/pfar_trees.dir/packing.cpp.o"
  "CMakeFiles/pfar_trees.dir/packing.cpp.o.d"
  "CMakeFiles/pfar_trees.dir/spanning_tree.cpp.o"
  "CMakeFiles/pfar_trees.dir/spanning_tree.cpp.o.d"
  "libpfar_trees.a"
  "libpfar_trees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
