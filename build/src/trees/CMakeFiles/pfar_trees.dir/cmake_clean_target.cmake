file(REMOVE_RECURSE
  "libpfar_trees.a"
)
