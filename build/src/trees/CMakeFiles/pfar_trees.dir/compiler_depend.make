# Empty compiler generated dependencies file for pfar_trees.
# This may be replaced when dependencies are built.
