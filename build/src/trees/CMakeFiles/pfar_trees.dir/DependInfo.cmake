
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trees/exact_packing.cpp" "src/trees/CMakeFiles/pfar_trees.dir/exact_packing.cpp.o" "gcc" "src/trees/CMakeFiles/pfar_trees.dir/exact_packing.cpp.o.d"
  "/root/repo/src/trees/hamiltonian.cpp" "src/trees/CMakeFiles/pfar_trees.dir/hamiltonian.cpp.o" "gcc" "src/trees/CMakeFiles/pfar_trees.dir/hamiltonian.cpp.o.d"
  "/root/repo/src/trees/low_depth.cpp" "src/trees/CMakeFiles/pfar_trees.dir/low_depth.cpp.o" "gcc" "src/trees/CMakeFiles/pfar_trees.dir/low_depth.cpp.o.d"
  "/root/repo/src/trees/packing.cpp" "src/trees/CMakeFiles/pfar_trees.dir/packing.cpp.o" "gcc" "src/trees/CMakeFiles/pfar_trees.dir/packing.cpp.o.d"
  "/root/repo/src/trees/spanning_tree.cpp" "src/trees/CMakeFiles/pfar_trees.dir/spanning_tree.cpp.o" "gcc" "src/trees/CMakeFiles/pfar_trees.dir/spanning_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/polarfly/CMakeFiles/pfar_polarfly.dir/DependInfo.cmake"
  "/root/repo/build/src/singer/CMakeFiles/pfar_singer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pfar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  "/root/repo/build/src/gf/CMakeFiles/pfar_gf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
