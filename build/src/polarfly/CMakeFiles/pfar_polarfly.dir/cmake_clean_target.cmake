file(REMOVE_RECURSE
  "libpfar_polarfly.a"
)
