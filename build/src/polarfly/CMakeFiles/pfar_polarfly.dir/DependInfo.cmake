
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/polarfly/erq.cpp" "src/polarfly/CMakeFiles/pfar_polarfly.dir/erq.cpp.o" "gcc" "src/polarfly/CMakeFiles/pfar_polarfly.dir/erq.cpp.o.d"
  "/root/repo/src/polarfly/layout.cpp" "src/polarfly/CMakeFiles/pfar_polarfly.dir/layout.cpp.o" "gcc" "src/polarfly/CMakeFiles/pfar_polarfly.dir/layout.cpp.o.d"
  "/root/repo/src/polarfly/projective_plane.cpp" "src/polarfly/CMakeFiles/pfar_polarfly.dir/projective_plane.cpp.o" "gcc" "src/polarfly/CMakeFiles/pfar_polarfly.dir/projective_plane.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gf/CMakeFiles/pfar_gf.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pfar_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pfar_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
