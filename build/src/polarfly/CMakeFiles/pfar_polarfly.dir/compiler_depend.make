# Empty compiler generated dependencies file for pfar_polarfly.
# This may be replaced when dependencies are built.
