file(REMOVE_RECURSE
  "CMakeFiles/pfar_polarfly.dir/erq.cpp.o"
  "CMakeFiles/pfar_polarfly.dir/erq.cpp.o.d"
  "CMakeFiles/pfar_polarfly.dir/layout.cpp.o"
  "CMakeFiles/pfar_polarfly.dir/layout.cpp.o.d"
  "CMakeFiles/pfar_polarfly.dir/projective_plane.cpp.o"
  "CMakeFiles/pfar_polarfly.dir/projective_plane.cpp.o.d"
  "libpfar_polarfly.a"
  "libpfar_polarfly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_polarfly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
