file(REMOVE_RECURSE
  "libpfar_topo.a"
)
