# Empty compiler generated dependencies file for pfar_topo.
# This may be replaced when dependencies are built.
