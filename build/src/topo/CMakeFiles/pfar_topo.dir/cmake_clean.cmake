file(REMOVE_RECURSE
  "CMakeFiles/pfar_topo.dir/topologies.cpp.o"
  "CMakeFiles/pfar_topo.dir/topologies.cpp.o.d"
  "libpfar_topo.a"
  "libpfar_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
