# Empty dependencies file for pfar_core.
# This may be replaced when dependencies are built.
