file(REMOVE_RECURSE
  "CMakeFiles/pfar_core.dir/planner.cpp.o"
  "CMakeFiles/pfar_core.dir/planner.cpp.o.d"
  "CMakeFiles/pfar_core.dir/resilience.cpp.o"
  "CMakeFiles/pfar_core.dir/resilience.cpp.o.d"
  "CMakeFiles/pfar_core.dir/serialize.cpp.o"
  "CMakeFiles/pfar_core.dir/serialize.cpp.o.d"
  "libpfar_core.a"
  "libpfar_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
