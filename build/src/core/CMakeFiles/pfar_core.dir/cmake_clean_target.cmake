file(REMOVE_RECURSE
  "libpfar_core.a"
)
