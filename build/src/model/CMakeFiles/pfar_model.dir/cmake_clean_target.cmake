file(REMOVE_RECURSE
  "libpfar_model.a"
)
