# Empty compiler generated dependencies file for pfar_model.
# This may be replaced when dependencies are built.
