file(REMOVE_RECURSE
  "CMakeFiles/pfar_model.dir/alpha_beta.cpp.o"
  "CMakeFiles/pfar_model.dir/alpha_beta.cpp.o.d"
  "CMakeFiles/pfar_model.dir/congestion_model.cpp.o"
  "CMakeFiles/pfar_model.dir/congestion_model.cpp.o.d"
  "libpfar_model.a"
  "libpfar_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pfar_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
