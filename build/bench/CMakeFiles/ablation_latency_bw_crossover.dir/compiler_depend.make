# Empty compiler generated dependencies file for ablation_latency_bw_crossover.
# This may be replaced when dependencies are built.
