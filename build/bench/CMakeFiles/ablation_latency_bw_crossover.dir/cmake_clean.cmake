file(REMOVE_RECURSE
  "CMakeFiles/ablation_latency_bw_crossover.dir/ablation_latency_bw_crossover.cpp.o"
  "CMakeFiles/ablation_latency_bw_crossover.dir/ablation_latency_bw_crossover.cpp.o.d"
  "ablation_latency_bw_crossover"
  "ablation_latency_bw_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_latency_bw_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
