# Empty dependencies file for fig5a_bandwidth.
# This may be replaced when dependencies are built.
