file(REMOVE_RECURSE
  "CMakeFiles/fig5a_bandwidth.dir/fig5a_bandwidth.cpp.o"
  "CMakeFiles/fig5a_bandwidth.dir/fig5a_bandwidth.cpp.o.d"
  "fig5a_bandwidth"
  "fig5a_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
