# Empty dependencies file for ablation_construction_choices.
# This may be replaced when dependencies are built.
