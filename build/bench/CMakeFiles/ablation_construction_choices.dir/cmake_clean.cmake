file(REMOVE_RECURSE
  "CMakeFiles/ablation_construction_choices.dir/ablation_construction_choices.cpp.o"
  "CMakeFiles/ablation_construction_choices.dir/ablation_construction_choices.cpp.o.d"
  "ablation_construction_choices"
  "ablation_construction_choices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_construction_choices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
