file(REMOVE_RECURSE
  "CMakeFiles/fig5b_depth.dir/fig5b_depth.cpp.o"
  "CMakeFiles/fig5b_depth.dir/fig5b_depth.cpp.o.d"
  "fig5b_depth"
  "fig5b_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
