# Empty dependencies file for fig5b_depth.
# This may be replaced when dependencies are built.
