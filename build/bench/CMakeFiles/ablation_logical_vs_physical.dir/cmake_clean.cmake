file(REMOVE_RECURSE
  "CMakeFiles/ablation_logical_vs_physical.dir/ablation_logical_vs_physical.cpp.o"
  "CMakeFiles/ablation_logical_vs_physical.dir/ablation_logical_vs_physical.cpp.o.d"
  "ablation_logical_vs_physical"
  "ablation_logical_vs_physical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_logical_vs_physical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
