# Empty dependencies file for ablation_logical_vs_physical.
# This may be replaced when dependencies are built.
