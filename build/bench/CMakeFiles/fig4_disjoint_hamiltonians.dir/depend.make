# Empty dependencies file for fig4_disjoint_hamiltonians.
# This may be replaced when dependencies are built.
