file(REMOVE_RECURSE
  "CMakeFiles/fig4_disjoint_hamiltonians.dir/fig4_disjoint_hamiltonians.cpp.o"
  "CMakeFiles/fig4_disjoint_hamiltonians.dir/fig4_disjoint_hamiltonians.cpp.o.d"
  "fig4_disjoint_hamiltonians"
  "fig4_disjoint_hamiltonians.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_disjoint_hamiltonians.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
