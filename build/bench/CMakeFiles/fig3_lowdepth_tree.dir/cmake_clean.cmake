file(REMOVE_RECURSE
  "CMakeFiles/fig3_lowdepth_tree.dir/fig3_lowdepth_tree.cpp.o"
  "CMakeFiles/fig3_lowdepth_tree.dir/fig3_lowdepth_tree.cpp.o.d"
  "fig3_lowdepth_tree"
  "fig3_lowdepth_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_lowdepth_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
