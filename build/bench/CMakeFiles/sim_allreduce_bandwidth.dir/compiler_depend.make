# Empty compiler generated dependencies file for sim_allreduce_bandwidth.
# This may be replaced when dependencies are built.
