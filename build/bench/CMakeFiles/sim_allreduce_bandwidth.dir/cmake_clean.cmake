file(REMOVE_RECURSE
  "CMakeFiles/sim_allreduce_bandwidth.dir/sim_allreduce_bandwidth.cpp.o"
  "CMakeFiles/sim_allreduce_bandwidth.dir/sim_allreduce_bandwidth.cpp.o.d"
  "sim_allreduce_bandwidth"
  "sim_allreduce_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_allreduce_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
