# Empty compiler generated dependencies file for table1_vertex_types.
# This may be replaced when dependencies are built.
