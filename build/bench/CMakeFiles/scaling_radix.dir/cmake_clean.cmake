file(REMOVE_RECURSE
  "CMakeFiles/scaling_radix.dir/scaling_radix.cpp.o"
  "CMakeFiles/scaling_radix.dir/scaling_radix.cpp.o.d"
  "scaling_radix"
  "scaling_radix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_radix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
