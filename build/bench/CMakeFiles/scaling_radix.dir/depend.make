# Empty dependencies file for scaling_radix.
# This may be replaced when dependencies are built.
