# Empty dependencies file for fig1_layout.
# This may be replaced when dependencies are built.
