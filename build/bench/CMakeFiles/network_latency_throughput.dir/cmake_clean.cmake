file(REMOVE_RECURSE
  "CMakeFiles/network_latency_throughput.dir/network_latency_throughput.cpp.o"
  "CMakeFiles/network_latency_throughput.dir/network_latency_throughput.cpp.o.d"
  "network_latency_throughput"
  "network_latency_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_latency_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
