# Empty compiler generated dependencies file for network_latency_throughput.
# This may be replaced when dependencies are built.
