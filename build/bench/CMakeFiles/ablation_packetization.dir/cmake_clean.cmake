file(REMOVE_RECURSE
  "CMakeFiles/ablation_packetization.dir/ablation_packetization.cpp.o"
  "CMakeFiles/ablation_packetization.dir/ablation_packetization.cpp.o.d"
  "ablation_packetization"
  "ablation_packetization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_packetization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
