# Empty dependencies file for topology_comparison.
# This may be replaced when dependencies are built.
