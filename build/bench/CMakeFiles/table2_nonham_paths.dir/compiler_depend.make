# Empty compiler generated dependencies file for table2_nonham_paths.
# This may be replaced when dependencies are built.
