file(REMOVE_RECURSE
  "CMakeFiles/table2_nonham_paths.dir/table2_nonham_paths.cpp.o"
  "CMakeFiles/table2_nonham_paths.dir/table2_nonham_paths.cpp.o.d"
  "table2_nonham_paths"
  "table2_nonham_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_nonham_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
