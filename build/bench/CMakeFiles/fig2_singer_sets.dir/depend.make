# Empty dependencies file for fig2_singer_sets.
# This may be replaced when dependencies are built.
