file(REMOVE_RECURSE
  "CMakeFiles/fig2_singer_sets.dir/fig2_singer_sets.cpp.o"
  "CMakeFiles/fig2_singer_sets.dir/fig2_singer_sets.cpp.o.d"
  "fig2_singer_sets"
  "fig2_singer_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_singer_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
