// Full diagnostic report for one PolarFly design point: both graph
// constructions, the layout, the difference set, and both tree solutions.
//
//   ./topology_report --q 11

#include <cstdio>
#include <iostream>
#include <string>

#include "model/congestion_model.hpp"
#include "polarfly/layout.hpp"
#include "singer/disjoint.hpp"
#include "singer/singer_graph.hpp"
#include "trees/hamiltonian.hpp"
#include "trees/low_depth.hpp"
#include "util/args.hpp"
#include "util/numeric.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int q = static_cast<int>(args.get_int("q", 11));
  if (!util::is_prime_power(q)) {
    std::fprintf(stderr, "topology_report: q must be a prime power\n");
    return 1;
  }

  // --- Projective construction. ---
  const polarfly::PolarFly pf(q);
  std::printf("== PolarFly ER_%d (projective construction) ==\n", q);
  std::printf("nodes N = %d, links = %d, radix = %d, diameter = %d\n",
              pf.n(), pf.graph().num_edges(), pf.radix(),
              pf.n() <= 1000 ? pf.graph().diameter() : 2);
  std::printf("quadrics |W| = %zu, |V1| = %d, |V2| = %d\n",
              pf.quadrics().size(),
              pf.count(polarfly::VertexType::kV1),
              pf.count(polarfly::VertexType::kV2));

  // --- Singer construction. ---
  const singer::SingerGraph sg(q);
  const auto& d = sg.difference_set();
  std::printf("\n== Singer construction ==\n");
  std::printf("difference set D = {");
  for (std::size_t i = 0; i < d.elements.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", d.elements[i]);
  }
  std::printf("} over Z_%lld\n", d.n);
  std::printf("reflection points = {");
  const auto refl = singer::reflection_points(d);
  for (std::size_t i = 0; i < refl.size(); ++i) {
    std::printf("%s%lld", i ? ", " : "", refl[i]);
  }
  std::printf("}\n");
  std::printf("alternating-sum Hamiltonian paths: %lld (= phi(N), Cor 7.20)\n",
              singer::count_hamiltonian_paths(d));

  // --- Edge-disjoint solution. ---
  const auto set = singer::find_disjoint_hamiltonians(d);
  std::printf("\n== Edge-disjoint Hamiltonian solution ==\n");
  std::printf("%d edge-disjoint Hamiltonian paths (bound floor((q+1)/2) = %d)\n",
              set.size(), singer::disjoint_hamiltonian_upper_bound(q));
  for (const auto& [d0, d1] : set.pairs) {
    std::printf("  colors (%lld, %lld)\n", d0, d1);
  }
  const auto ham_trees = trees::hamiltonian_trees(set);
  const auto ham_bw = model::compute_tree_bandwidths(sg.graph(), ham_trees, 1.0);
  std::printf("tree depth (midpoint root) = %d, congestion = %d, "
              "aggregate BW = %.1f x B (optimal %.1f)\n",
              ham_trees.front().depth(),
              trees::max_congestion(sg.graph(), ham_trees), ham_bw.aggregate,
              model::optimal_polarfly_bandwidth(q, 1.0));

  // --- Low-depth solution (odd q only). ---
  if (q % 2 == 1) {
    const auto layout = polarfly::build_layout(pf);
    const auto ld_trees = trees::build_low_depth_trees(pf, layout);
    const auto ld_bw = model::compute_tree_bandwidths(pf.graph(), ld_trees, 1.0);
    int max_depth = 0;
    for (const auto& t : ld_trees) max_depth = std::max(max_depth, t.depth());
    std::printf("\n== Low-depth solution (Algorithm 3) ==\n");
    std::printf("%zu trees, depth <= %d, congestion = %d, "
                "aggregate BW = %.1f x B\n",
                ld_trees.size(), max_depth,
                trees::max_congestion(pf.graph(), ld_trees), ld_bw.aggregate);
    std::printf("Lemma 7.8 (opposite reduction flows on shared links): %s\n",
                trees::opposite_reduction_flows(pf.graph(), ld_trees)
                    ? "holds"
                    : "VIOLATED");
  } else {
    std::printf("\n(low-depth layout solution: odd q only; skipped)\n");
  }
  return 0;
}
