// Quickstart: build both of the paper's Allreduce solutions on a PolarFly
// of your chosen q, print their analytic properties, and run a cycle-level
// simulation of one Allreduce.
//
//   ./quickstart --q 7 --m 20000

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  const pfar::util::Args args(argc, argv);
  const int q = static_cast<int>(args.get_int("q", 7));
  const long long m = args.get_int("m", 20000);

  std::printf("PolarFly ER_%d: N = %d nodes, radix %d\n", q, q * q + q + 1,
              q + 1);
  std::printf("Optimal in-network Allreduce bandwidth (Cor 7.1): %.1f x B\n\n",
              (q + 1) / 2.0);

  pfar::util::Table table({"solution", "trees", "depth", "congestion",
                           "agg BW (xB)", "sim cycles", "sim BW (elem/cyc)",
                           "correct"});

  for (const auto solution : {pfar::core::Solution::kSingleTree,
                              pfar::core::Solution::kLowDepth,
                              pfar::core::Solution::kEdgeDisjoint}) {
    const auto plan =
        pfar::core::AllreducePlanner(q).solution(solution).build();
    const auto result = plan.simulate(m);
    table.add(pfar::core::to_string(solution), plan.num_trees(),
              plan.max_depth(), plan.max_congestion(),
              plan.aggregate_bandwidth(), result.sim.cycles,
              result.sim.aggregate_bandwidth, result.sim.values_correct);
  }
  table.print(std::cout);
  return 0;
}
