// Distributed-training scenario (the paper's motivating workload,
// Section 1): data-parallel training performs one large gradient Allreduce
// per step. This example sweeps gradient-bucket sizes and compares, on the
// same PolarFly, the paper's two multi-tree in-network solutions against a
// single-tree in-network offload and host-based ring / recursive-doubling
// baselines.
//
//   ./ml_training --q 7 --steps 3

#include <cstdio>
#include <iostream>
#include <numeric>

#include "collectives/host_allreduce.hpp"
#include "collectives/innetwork.hpp"
#include "core/planner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int q = static_cast<int>(args.get_int("q", 7));
  if (q % 2 == 0) {
    std::fprintf(stderr, "ml_training: odd prime power q required\n");
    return 1;
  }

  const auto low_depth =
      core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
  const auto disjoint =
      core::AllreducePlanner(q).solution(core::Solution::kEdgeDisjoint).build();
  const auto single =
      core::AllreducePlanner(q).solution(core::Solution::kSingleTree).build();

  const collectives::RoutedNetwork routed(low_depth.topology());
  std::vector<int> placement(static_cast<std::size_t>(low_depth.num_nodes()));
  std::iota(placement.begin(), placement.end(), 0);

  // Host baselines costed with alpha = link latency, beta = 1 element/cycle
  // (same units as the simulator).
  const double alpha = simnet::SimConfig{}.link_latency;

  std::printf(
      "Gradient Allreduce on PolarFly q=%d (%d nodes). Times in cycles;\n"
      "speedup is host-ring time / in-network multi-tree time.\n\n",
      q, low_depth.num_nodes());

  util::Table table({"bucket (elems)", "low-depth", "edge-disjoint",
                     "single-tree", "host ring", "recursive dbl",
                     "speedup vs ring"});
  for (long long m : {1000LL, 10000LL, 100000LL}) {
    const auto ld = low_depth.simulate(m);
    const auto ed = disjoint.simulate(m);
    const auto st = single.simulate(m);
    const auto ring = collectives::run_host_baseline(
        collectives::HostAlgorithm::kRing, routed, placement, m, alpha, 1.0);
    const auto rdbl = collectives::run_host_baseline(
        collectives::HostAlgorithm::kRecursiveDoubling, routed, placement, m,
        alpha, 1.0);
    if (!ld.sim.values_correct || !ed.sim.values_correct ||
        !st.sim.values_correct || !ring.correct || !rdbl.correct) {
      std::fprintf(stderr, "correctness check failed\n");
      return 1;
    }
    table.add(m, ld.sim.cycles, ed.sim.cycles, st.sim.cycles,
              ring.cost.total_time, rdbl.cost.total_time,
              ring.cost.total_time / static_cast<double>(ld.sim.cycles));
  }
  table.print(std::cout);

  std::printf(
      "\nShape check: the multi-tree in-network solutions win by about\n"
      "q/2 = %.1fx over the single-tree offload at large buckets, matching\n"
      "the paper's bandwidth analysis.\n",
      q / 2.0);

  // --- One full training step with a transformer-like gradient bucket
  // sequence (the workload shape that motivates the paper: per-layer
  // gradients fused into buckets and all-reduced back-to-back). ---
  const int dim = static_cast<int>(args.get_int("dim", 48));
  const int layers = static_cast<int>(args.get_int("layers", 6));
  std::vector<long long> buckets;
  for (int l = 0; l < layers; ++l) {
    buckets.push_back(4LL * dim * dim);  // attention qkv + out proj
    buckets.push_back(8LL * dim * dim);  // mlp up + down
  }
  buckets.push_back(2LL * dim * 1000);  // embeddings / head slice

  long long total = 0;
  for (long long b : buckets) total += b;
  std::printf("\nTransformer-like step: %zu gradient buckets, %lld elements "
              "total (d=%d, %d layers)\n\n",
              buckets.size(), total, dim, layers);

  auto step_cycles = [&](const core::AllreducePlan& plan) {
    long long cycles = 0;
    for (long long b : buckets) {
      const auto r = plan.simulate(b);
      if (!r.sim.values_correct) return -1LL;
      cycles += r.sim.cycles;
    }
    return cycles;
  };
  const long long c_ld = step_cycles(low_depth);
  const long long c_ed = step_cycles(disjoint);
  const long long c_st = step_cycles(single);
  if (c_ld < 0 || c_ed < 0 || c_st < 0) {
    std::fprintf(stderr, "correctness check failed\n");
    return 1;
  }
  util::Table step({"scheme", "step allreduce cycles", "vs single-tree"});
  step.add("low-depth", c_ld,
           static_cast<double>(c_st) / static_cast<double>(c_ld));
  step.add("edge-disjoint", c_ed,
           static_cast<double>(c_st) / static_cast<double>(c_ed));
  step.add("single-tree", c_st, 1.0);
  step.print(std::cout);
  return 0;
}
