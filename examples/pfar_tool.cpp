// Command-line front end for the library — the workflow a deployment
// control plane would script:
//
//   ./pfar_tool plan --q 7 --solution disjoint --out trees.txt
//   ./pfar_tool simulate --q 7 --solution lowdepth --m 50000
//   ./pfar_tool verify --in trees.txt
//   ./pfar_tool degrade --q 7 --fail 3
//
// `plan` writes the serialized tree set; `verify` re-parses it and checks
// every tree against the regenerated topology; `degrade` fails links and
// reports surviving vs repacked bandwidth.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/planner.hpp"
#include "core/resilience.hpp"
#include "core/serialize.hpp"
#include "trees/spanning_tree.hpp"
#include "util/args.hpp"

namespace {

using namespace pfar;

core::Solution parse_solution(const std::string& name) {
  if (name == "lowdepth") return core::Solution::kLowDepth;
  if (name == "disjoint") return core::Solution::kEdgeDisjoint;
  if (name == "single") return core::Solution::kSingleTree;
  throw std::invalid_argument("unknown solution: " + name +
                              " (use lowdepth|disjoint|single)");
}

int cmd_plan(const util::Args& args) {
  const int q = static_cast<int>(args.get_int("q", 7));
  const auto plan =
      core::AllreducePlanner(q)
          .solution(parse_solution(args.get_string("solution", "lowdepth")))
          .build();
  const std::string text = core::serialize_trees(q, plan.trees());
  const std::string out = args.get_string("out", "");
  if (out.empty()) {
    std::cout << text;
  } else {
    std::ofstream file(out);
    if (!file) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    file << text;
    std::printf("wrote %zu trees (aggregate %.1f x B, depth %d) to %s\n",
                plan.trees().size(), plan.aggregate_bandwidth(),
                plan.max_depth(), out.c_str());
  }
  return 0;
}

int cmd_simulate(const util::Args& args) {
  const int q = static_cast<int>(args.get_int("q", 7));
  const long long m = args.get_int("m", 20000);
  const auto plan =
      core::AllreducePlanner(q)
          .solution(parse_solution(args.get_string("solution", "lowdepth")))
          .build();
  simnet::SimConfig cfg;
  cfg.link_latency = static_cast<int>(args.get_int("latency", cfg.link_latency));
  cfg.packet_payload =
      static_cast<int>(args.get_int("payload", cfg.packet_payload));
  cfg.packet_header_flits =
      static_cast<int>(args.get_int("header", cfg.packet_header_flits));
  const auto res = plan.simulate(m, cfg);
  std::printf("q=%d nodes=%d trees=%d depth=%d congestion=%d\n", q,
              plan.num_nodes(), plan.num_trees(), plan.max_depth(),
              plan.max_congestion());
  std::printf("predicted BW %.3f x B, simulated %.3f elem/cycle "
              "(efficiency %.3f), %lld cycles, correct=%s\n",
              plan.aggregate_bandwidth(), res.sim.aggregate_bandwidth,
              res.efficiency_vs_model, res.sim.cycles,
              res.sim.values_correct ? "yes" : "NO");
  return res.sim.values_correct ? 0 : 1;
}

int cmd_verify(const util::Args& args) {
  const std::string in = args.get_string("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "verify: --in file required\n");
    return 1;
  }
  std::ifstream file(in);
  if (!file) {
    std::fprintf(stderr, "cannot read %s\n", in.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto parsed = core::parse_trees(buffer.str());
  const polarfly::PolarFly pf(parsed.q);
  int index = 0;
  for (const auto& tree : parsed.trees) {
    if (!tree.is_spanning_tree_of(pf.graph())) {
      std::fprintf(stderr, "tree %d is not a spanning tree of ER_%d\n",
                   index, parsed.q);
      return 1;
    }
    ++index;
  }
  std::printf("%d trees verified against ER_%d (congestion %d)\n", index,
              parsed.q,
              trees::max_congestion(pf.graph(), parsed.trees));
  return 0;
}

int cmd_degrade(const util::Args& args) {
  const int q = static_cast<int>(args.get_int("q", 7));
  const int fail = static_cast<int>(args.get_int("fail", 1));
  const auto plan = core::AllreducePlanner(q).build();
  std::vector<graph::Edge> failed;
  for (int i = 0; i < fail; ++i) {
    failed.push_back(plan.topology().edge(
        (i * 37) % plan.topology().num_edges()));
  }
  const auto keep =
      core::degrade_keep_surviving(plan.topology(), plan.trees(), failed);
  const auto repack = core::degrade_repack(plan.topology(), failed);
  std::printf("healthy: %d trees, %.2f x B\n", plan.num_trees(),
              plan.aggregate_bandwidth());
  std::printf("after %zu failures — keep-surviving: %zu trees, %.2f x B; "
              "repack: %zu trees, %.2f x B\n",
              failed.size(), keep.trees.size(), keep.bandwidths.aggregate,
              repack.trees.size(), repack.bandwidths.aggregate);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: pfar_tool plan|simulate|verify|degrade [--flags]\n");
    return 1;
  }
  const std::string cmd = argv[1];
  const util::Args args(argc - 1, argv + 1);
  try {
    if (cmd == "plan") return cmd_plan(args);
    if (cmd == "simulate") return cmd_simulate(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "degrade") return cmd_degrade(args);
    std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return 1;
}
