// HPC scenario: small-vector Allreduce is latency-bound (Section 1). This
// example sweeps tiny-to-medium vector sizes and shows where the depth-3
// low-latency trees beat the deep (depth (N-1)/2) edge-disjoint trees —
// the latency/bandwidth trade-off of Section 7.3.
//
//   ./hpc_latency --q 7

#include <cstdio>
#include <iostream>

#include "core/planner.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace pfar;
  const util::Args args(argc, argv);
  const int q = static_cast<int>(args.get_int("q", 7));
  if (q % 2 == 0) {
    std::fprintf(stderr, "hpc_latency: odd prime power q required\n");
    return 1;
  }

  const auto low_depth =
      core::AllreducePlanner(q).solution(core::Solution::kLowDepth).build();
  const auto disjoint =
      core::AllreducePlanner(q).solution(core::Solution::kEdgeDisjoint).build();

  std::printf(
      "Latency-vs-bandwidth trade-off on PolarFly q=%d:\n"
      "  low-depth: depth %d, aggregate bandwidth %.1f x B\n"
      "  edge-disjoint: depth %d, aggregate bandwidth %.1f x B\n\n",
      q, low_depth.max_depth(), low_depth.aggregate_bandwidth(),
      disjoint.max_depth(), disjoint.aggregate_bandwidth());

  util::Table table({"m (elems)", "low-depth cycles", "edge-disjoint cycles",
                     "winner"});
  long long crossover = -1;
  for (long long m : {1LL, 8LL, 64LL, 256LL, 1024LL, 4096LL, 16384LL,
                      65536LL}) {
    const auto ld = low_depth.simulate(m);
    const auto ed = disjoint.simulate(m);
    const bool ld_wins = ld.sim.cycles <= ed.sim.cycles;
    if (!ld_wins && crossover < 0) crossover = m;
    table.add(m, ld.sim.cycles, ed.sim.cycles,
              ld_wins ? "low-depth" : "edge-disjoint");
  }
  table.print(std::cout);

  if (crossover >= 0) {
    std::printf(
        "\nThe deep Hamiltonian trees overtake at m >= %lld: their extra\n"
        "bandwidth amortizes the (N-1)/2 pipeline fill for large vectors,\n"
        "while depth-3 trees win for latency-bound sizes.\n",
        crossover);
  } else {
    std::printf(
        "\nLow-depth trees won every size tested (small q: the bandwidth\n"
        "gap q/(q+1) is tiny while the depth gap is large).\n");
  }
  return 0;
}
