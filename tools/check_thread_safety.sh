#!/usr/bin/env bash
# Thread-safety analysis self-check. Two halves:
#
#  1. Fixture check: the annotated-but-unlocked fixture MUST produce a
#     -Wthread-safety diagnostic and the correctly-locked twin MUST compile
#     clean. This catches the silent failure mode where the macros expand
#     to nothing (wrong compiler, wrong guards) and the analysis "passes"
#     vacuously.
#  2. Tree check (optional, --tree BUILD_DIR): recompile every TU in the
#     compile database with -fsyntax-only -Wthread-safety promoted to
#     errors. CI does this via a dedicated Clang build instead; the flag
#     exists for local use.
#
# Needs Clang: GCC does not implement the analysis, so without clang++ the
# script skips with exit 0 (CI installs Clang and therefore enforces it).

set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
cxx=${CLANGXX:-clang++}

if ! command -v "$cxx" >/dev/null 2>&1; then
  echo "== $cxx not installed; skipping thread-safety check (CI runs it)"
  exit 0
fi

flags="-std=c++20 -fsyntax-only -I$repo_root/src \
  -Wthread-safety -Wthread-safety-beta"
fixture_dir="$repo_root/tests/thread_safety_fixture"
status=0

# Positive fixture: zero diagnostics, warnings promoted to errors.
# shellcheck disable=SC2086
if ! "$cxx" $flags -Werror "$fixture_dir/guarded_account_ok.cpp"; then
  echo "FAIL: correctly-locked fixture did not compile clean" >&2
  status=1
else
  echo "ok: locked fixture compiles clean under -Wthread-safety"
fi

# Negative fixture: the missing lock MUST be diagnosed.
# shellcheck disable=SC2086
out=$("$cxx" $flags -Werror "$fixture_dir/guarded_account_bad.cpp" 2>&1)
if [ $? -eq 0 ]; then
  echo "FAIL: unlocked fixture compiled clean; the analysis is not running" >&2
  status=1
elif ! echo "$out" | grep -q "requires holding mutex"; then
  echo "FAIL: unlocked fixture failed for the wrong reason:" >&2
  echo "$out" >&2
  status=1
else
  echo "ok: removing the lock produces a thread-safety diagnostic"
fi

# Optional whole-tree syntax-only sweep from the compile database.
if [ "${1:-}" = "--tree" ]; then
  build_dir=${2:-"$repo_root/build"}
  db="$build_dir/compile_commands.json"
  if [ ! -f "$db" ]; then
    echo "error: no compile_commands.json in '$build_dir'" >&2
    exit 2
  fi
  echo "== tree sweep (-fsyntax-only, warnings as errors)"
  # Extract "file" entries without requiring jq.
  files=$(sed -n 's/^ *"file": *"\(.*\)",*$/\1/p' "$db" | sort -u)
  for f in $files; do
    # shellcheck disable=SC2086
    if ! "$cxx" $flags -Werror=thread-safety-analysis \
        -I"$repo_root/bench" "$f"; then
      echo "FAIL: $f" >&2
      status=1
    fi
  done
fi

exit $status
