#!/usr/bin/env bash
# Static-analysis driver: the in-tree pfar_lint rule engine, clang-tidy
# (using the compile database the build exports) and cppcheck, the latter
# two under the configs committed at the repo root.
#
# Usage: tools/run_static_analysis.sh [--full] [BUILD_DIR]   (default: build)
#
#   --full   also lint tests/ and bench/ translation units with clang-tidy
#            and cppcheck (the default run covers src/ and tools/ only, to
#            keep the loop fast; pfar_lint always covers the full tree via
#            the compile database).
#
# External tools that are not installed are skipped with a notice instead
# of failing, so the script is safe to run in minimal containers; CI
# installs them and therefore enforces them. pfar_lint is built by the
# repo itself and is always enforced. Exit status is nonzero iff a tool
# that ran reported a finding.

set -u

full=0
build_dir_arg=""
for arg in "$@"; do
  case "$arg" in
    --full) full=1 ;;
    --help|-h)
      sed -n '2,17p' "$0" | sed 's/^# \{0,1\}//'
      exit 0
      ;;
    -*)
      echo "error: unknown option '$arg' (try --help)" >&2
      exit 2
      ;;
    *)
      if [ -n "$build_dir_arg" ]; then
        echo "error: more than one BUILD_DIR argument" >&2
        exit 2
      fi
      build_dir_arg=$arg
      ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${build_dir_arg:-"$repo_root/build"}
# A relative BUILD_DIR is resolved against the repo root, not the CWD.
if [ ! -d "$build_dir" ] && [ -n "$build_dir_arg" ] \
    && [ -d "$repo_root/$build_dir_arg" ]; then
  build_dir="$repo_root/$build_dir_arg"
fi
if [ ! -d "$build_dir" ]; then
  echo "error: build directory '$build_dir' does not exist." >&2
  echo "       Configure and build first: cmake -S . -B build && cmake --build build" >&2
  exit 2
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: no compile_commands.json in '$build_dir'." >&2
  echo "       Configure first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default):" >&2
  echo "       cmake -S . -B build" >&2
  exit 2
fi

status=0
cd "$repo_root"

# Scope for the external tools. pfar_lint derives its own file set from the
# compile database (every TU plus transitively included first-party
# headers), so it is unaffected by --full.
scope="src tools"
if [ "$full" = 1 ]; then
  scope="src tools tests bench"
fi

# pfar_lint: the project's own determinism/contract/concurrency rule
# engine (tools/pfar_lint.cpp). Built by every configure; if the binary is
# missing the build is stale, which is an error rather than a skip.
pfar_lint="$build_dir/tools/pfar_lint"
if [ -x "$pfar_lint" ]; then
  echo "== pfar_lint (compile database, allowlist tools/pfar_lint_allowlist.txt)"
  if ! "$pfar_lint" --compile-db "$build_dir/compile_commands.json" \
      --allowlist tools/pfar_lint_allowlist.txt; then
    echo "pfar_lint: findings above" >&2
    status=1
  fi
else
  echo "error: $pfar_lint not built; run: cmake --build $build_dir --target pfar_lint" >&2
  status=1
fi

# clang-tidy over the first-party translation units in scope (tests and
# benches only with --full, to keep the default run fast).
if command -v clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2086
  sources=$(find $scope -name '*.cpp' -not -path '*lint_fixtures*' | sort)
  echo "== clang-tidy ($(echo "$sources" | wc -l) files, config .clang-tidy)"
  # shellcheck disable=SC2086
  if ! clang-tidy -p "$build_dir" --quiet $sources; then
    echo "clang-tidy: findings above" >&2
    status=1
  fi
else
  echo "== clang-tidy not installed; skipping (CI runs it)"
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck (config .cppcheck-suppressions)"
  # shellcheck disable=SC2086
  if ! cppcheck --enable=warning,performance,portability \
      --suppressions-list=.cppcheck-suppressions \
      --inline-suppr \
      --error-exitcode=1 \
      --std=c++20 \
      --quiet \
      -i tests/lint_fixtures \
      -I src \
      $scope; then
    echo "cppcheck: findings above" >&2
    status=1
  fi
else
  echo "== cppcheck not installed; skipping (CI runs it)"
fi

exit $status
