#!/usr/bin/env bash
# Static-analysis driver: clang-tidy (using the compile database the build
# exports) and cppcheck, both under the configs committed at the repo root.
#
# Usage: tools/run_static_analysis.sh [BUILD_DIR]   (default: build)
#
# Tools that are not installed are skipped with a notice instead of
# failing, so the script is safe to run in minimal containers; CI installs
# both and therefore enforces them. Exit status is nonzero iff an installed
# tool reported a finding.

set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ -d "$build_dir" ] || build_dir="$repo_root/$1"

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: no compile_commands.json in '$build_dir'." >&2
  echo "       Configure first (CMAKE_EXPORT_COMPILE_COMMANDS is on by default):" >&2
  echo "       cmake -S . -B build" >&2
  exit 2
fi

status=0
cd "$repo_root"

# clang-tidy over every first-party translation unit in the compile
# database (src/ and tools/; tests and benches follow the same flags but
# are skipped to keep the run fast).
if command -v clang-tidy >/dev/null 2>&1; then
  sources=$(find src tools -name '*.cpp' | sort)
  echo "== clang-tidy ($(echo "$sources" | wc -l) files, config .clang-tidy)"
  # shellcheck disable=SC2086
  if ! clang-tidy -p "$build_dir" --quiet $sources; then
    echo "clang-tidy: findings above" >&2
    status=1
  fi
else
  echo "== clang-tidy not installed; skipping (CI runs it)"
fi

if command -v cppcheck >/dev/null 2>&1; then
  echo "== cppcheck (config .cppcheck-suppressions)"
  if ! cppcheck --enable=warning,performance,portability \
      --suppressions-list=.cppcheck-suppressions \
      --inline-suppr \
      --error-exitcode=1 \
      --std=c++20 \
      --quiet \
      -I src \
      src tools; then
    echo "cppcheck: findings above" >&2
    status=1
  fi
else
  echo "== cppcheck not installed; skipping (CI runs it)"
fi

exit $status
