// pfar_audit: end-to-end invariant audit for PolarFly Allreduce plans.
//
// Loads a serialized plan (--plan FILE) or builds design points from
// scratch (--q N), then runs the full invariant battery against the
// paper's claims: Table 1 vertex partition sizes, layout Properties 1-3
// (Algorithm 2), Lemma 7.8 (congestion <= 2 with opposite reduction
// flows), Corollaries 7.15/7.16 (pairwise edge-disjoint Hamiltonian path
// trees), Lemma 7.17 depth bounds, plus cross-checks the code itself
// could get wrong as a unit: congestion recomputed from scratch against
// the planner's claim, Algorithm 1 bandwidths against the reference
// implementation, and a byte-exact serialization round trip.
//
// Output is a machine-readable JSON report (stdout or --out FILE).
// Exit status: 0 = every check passed, 1 = at least one violation,
// 2 = usage or I/O error.

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "collectives/innetwork.hpp"
#include "collectives/resilient.hpp"
#include "core/planner.hpp"
#include "core/resilience.hpp"
#include "core/serialize.hpp"
#include "model/congestion_model.hpp"
#include "simnet/allreduce_sim.hpp"
#include "simnet/config.hpp"
#include "polarfly/erq.hpp"
#include "polarfly/layout.hpp"
#include "singer/difference_set.hpp"
#include "singer/disjoint.hpp"
#include "trees/spanning_tree.hpp"
#include "util/args.hpp"
#include "util/contracts.hpp"

namespace {

using pfar::core::AllreducePlan;
using pfar::core::Solution;

struct Check {
  std::string name;
  bool pass = false;
  std::string detail;
};

struct Report {
  std::string solution;
  int q = 0;
  int starter = 0;
  std::vector<Check> checks;

  int failed() const {
    int n = 0;
    for (const auto& c : checks) n += c.pass ? 0 : 1;
    return n;
  }
};

/// Runs one named check. The body returns its human-readable detail
/// string and signals failure by throwing; contract violations and any
/// other exception are captured as the failure detail.
template <typename Fn>
void run_check(std::vector<Check>& out, const std::string& name, Fn&& body) {
  Check c;
  c.name = name;
  try {
    c.detail = body();
    c.pass = true;
  } catch (const std::exception& e) {
    c.pass = false;
    c.detail = e.what();
  }
  out.push_back(std::move(c));
}

/// Failure signal for check bodies: carries the violation description.
struct Violation : std::runtime_error {
  explicit Violation(const std::string& what) : std::runtime_error(what) {}
};

template <typename T>
std::string str(const T& v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

void require(bool cond, const std::string& what) {
  if (!cond) throw Violation(what);
}

std::string solution_flag(Solution s) {
  switch (s) {
    case Solution::kLowDepth: return "low-depth";
    case Solution::kEdgeDisjoint: return "edge-disjoint";
    case Solution::kSingleTree: return "single-tree";
  }
  return "?";
}

/// Normalized undirected edge key for audit-local congestion counting,
/// independent of graph::Graph's edge ids.
long long edge_key(int n, int u, int v) {
  const long long a = u < v ? u : v;
  const long long b = u < v ? v : u;
  return a * static_cast<long long>(n) + b;
}

// ---------------------------------------------------------------------------
// Design-point checks (rebuilt from q alone, independent of the plan).
// ---------------------------------------------------------------------------

void check_table1(std::vector<Check>& out, int q) {
  run_check(out, "table1.partition_sizes", [q] {
    const pfar::polarfly::PolarFly pf(q);
    const int n = q * q + q + 1;
    require(pf.n() == n, "N != q^2+q+1: " + str(pf.n()));
    const int w = pf.count(pfar::polarfly::VertexType::kQuadric);
    const int v1 = pf.count(pfar::polarfly::VertexType::kV1);
    const int v2 = pf.count(pfar::polarfly::VertexType::kV2);
    require(w == q + 1, "|W| = " + str(w) + ", expected " + str(q + 1));
    if (q % 2 == 1) {
      require(v1 == q * (q + 1) / 2,
              "|V1| = " + str(v1) + ", expected " + str(q * (q + 1) / 2));
      require(v2 == q * (q - 1) / 2,
              "|V2| = " + str(v2) + ", expected " + str(q * (q - 1) / 2));
    } else {
      require(v1 == q * q, "|V1| = " + str(v1) + ", expected " + str(q * q));
      require(v2 == 0, "|V2| = " + str(v2) + ", expected 0 for even q");
    }
    return "|W| = " + str(w) + ", |V1| = " + str(v1) + ", |V2| = " + str(v2);
  });

  run_check(out, "topology.degree_law", [q] {
    const pfar::polarfly::PolarFly pf(q);
    const auto& g = pf.graph();
    int deg_q = 0;
    for (int v = 0; v < g.num_vertices(); ++v) {
      const int d = g.degree(v);
      if (d == q) {
        ++deg_q;
      } else if (d != q + 1) {
        throw Violation("vertex " + str(v) + " has degree " + str(d));
      }
    }
    require(deg_q == q + 1, "degree-q vertex count " + str(deg_q) +
                                ", expected " + str(q + 1) + " quadrics");
    return str(q + 1) + " quadrics of degree q, rest degree q+1";
  });

  if (q % 2 == 1) {
    run_check(out, "layout.properties_1_to_3", [q] {
      const pfar::polarfly::PolarFly pf(q);
      const auto layout = pfar::polarfly::build_layout(pf, 0);
      require(static_cast<int>(layout.clusters.size()) == q,
              "cluster count " + str(layout.clusters.size()));
      int covered = static_cast<int>(layout.quadric_cluster.size());
      for (const auto& cluster : layout.clusters) {
        require(static_cast<int>(cluster.size()) == q,
                "cluster size " + str(cluster.size()) + ", expected q");
        covered += static_cast<int>(cluster.size());
      }
      require(covered == pf.n(), "partition covers " + str(covered) + " of " +
                                     str(pf.n()) + " vertices");
      for (int v = 0; v < pf.n(); ++v) {
        const int c = layout.cluster_of[static_cast<std::size_t>(v)];
        if (pf.is_quadric(v)) {
          require(c == -1, "quadric " + str(v) + " mapped to cluster");
        } else {
          require(c >= 0 && c < q, "vertex " + str(v) + " unassigned");
        }
      }
      return str(q) + " clusters of size q partition V \\ W";
    });
  }

  run_check(out, "singer.difference_set", [q] {
    const auto d = pfar::singer::build_difference_set(q);
    require(d.n == static_cast<long long>(q) * q + q + 1,
            "N = " + str(d.n));
    require(static_cast<int>(d.elements.size()) == q + 1,
            "|D| = " + str(d.elements.size()) + ", expected q+1");
    require(pfar::singer::is_valid_difference_set(d.elements, d.n),
            "Definition 6.2 violated: differences do not cover Z_N \\ {0}");
    return "perfect difference set of order q+1 over Z_" + str(d.n);
  });
}

// ---------------------------------------------------------------------------
// Plan-level checks (work for built and deserialized plans alike).
// ---------------------------------------------------------------------------

void check_plan(std::vector<Check>& out, const AllreducePlan& plan,
                int starter) {
  const int q = plan.q();
  const auto& g = plan.topology();
  const auto& trees = plan.trees();
  const int n = g.num_vertices();

  run_check(out, "topology.order", [&] {
    require(n == q * q + q + 1,
            "n = " + str(n) + ", expected " + str(q * q + q + 1));
    return "n = " + str(n);
  });

  run_check(out, "trees.count", [&] {
    int expected = 0;
    switch (plan.solution()) {
      case Solution::kLowDepth: expected = (q % 2 == 1) ? q : q - 1; break;
      case Solution::kEdgeDisjoint:
        expected = pfar::singer::disjoint_hamiltonian_upper_bound(q);
        break;
      case Solution::kSingleTree: expected = 1; break;
    }
    require(plan.num_trees() == expected, "num_trees = " +
                                              str(plan.num_trees()) +
                                              ", expected " + str(expected));
    return str(plan.num_trees()) + " trees";
  });

  run_check(out, "trees.spanning", [&] {
    for (std::size_t i = 0; i < trees.size(); ++i) {
      require(trees[i].is_spanning_tree_of(g),
              "tree " + str(i) + " is not a spanning tree of the topology");
    }
    return "all " + str(trees.size()) + " trees span the topology";
  });

  run_check(out, "trees.depth_bound", [&] {
    int bound = 0;
    switch (plan.solution()) {
      case Solution::kLowDepth: bound = 3; break;           // Theorem 7.4
      case Solution::kSingleTree: bound = 2; break;         // diameter 2
      case Solution::kEdgeDisjoint: bound = n / 2; break;   // Lemma 7.17
    }
    for (std::size_t i = 0; i < trees.size(); ++i) {
      require(trees[i].depth() <= bound,
              "tree " + str(i) + " depth " + str(trees[i].depth()) +
                  " exceeds bound " + str(bound));
    }
    require(plan.max_depth() <= bound, "max_depth() disagrees");
    return "max depth " + str(plan.max_depth()) + " <= " + str(bound);
  });

  run_check(out, "congestion.recomputed", [&] {
    // Recount from scratch with an audit-local edge keying, independent
    // of graph::Graph's edge-id machinery and trees::edge_congestion.
    std::unordered_map<long long, int> load;
    for (const auto& t : trees) {
      for (const auto& e : t.edges()) {
        require(g.has_edge(e.u, e.v), "tree edge (" + str(e.u) + "," +
                                          str(e.v) + ") not in topology");
        ++load[edge_key(n, e.u, e.v)];
      }
    }
    int recomputed = 0;
    for (const auto& [key, c] : load) {
      static_cast<void>(key);
      recomputed = std::max(recomputed, c);
    }
    const int claimed = plan.max_congestion();
    require(recomputed == claimed, "recomputed max congestion " +
                                       str(recomputed) +
                                       " != planner claim " + str(claimed));
    const int bound = plan.solution() == Solution::kLowDepth ? 2 : 1;
    require(recomputed <= bound, "congestion " + str(recomputed) +
                                     " exceeds bound " + str(bound));
    return "max congestion " + str(recomputed) + " <= " + str(bound) +
           ", matches planner claim";
  });

  if (plan.solution() == Solution::kLowDepth) {
    run_check(out, "lemma7_8.opposite_flows", [&] {
      require(pfar::trees::opposite_reduction_flows(g, trees),
              "a doubly-loaded link carries same-direction reduction flows");
      return "every shared link reduces in opposite directions";
    });
  }

  if (plan.solution() == Solution::kEdgeDisjoint) {
    run_check(out, "cor7_15.pairwise_edge_disjoint", [&] {
      // Corollaries 7.15/7.16 via explicit pairwise edge-set
      // intersection, not just the congestion <= 1 shortcut.
      std::vector<std::set<long long>> sets(trees.size());
      for (std::size_t i = 0; i < trees.size(); ++i) {
        for (const auto& e : trees[i].edges()) {
          sets[i].insert(edge_key(n, e.u, e.v));
        }
      }
      for (std::size_t i = 0; i < sets.size(); ++i) {
        for (std::size_t j = i + 1; j < sets.size(); ++j) {
          for (long long key : sets[i]) {
            require(sets[j].count(key) == 0,
                    "trees " + str(i) + " and " + str(j) +
                        " share an edge (key " + str(key) + ")");
          }
        }
      }
      require(static_cast<int>(trees.size()) <=
                  pfar::singer::disjoint_hamiltonian_upper_bound(q),
              "more trees than Lemma 7.18's floor((q+1)/2) bound");
      return str(trees.size()) + " pairwise edge-disjoint path trees";
    });
  }

  run_check(out, "bandwidth.claim", [&] {
    const auto ref =
        pfar::model::compute_tree_bandwidths_reference(g, trees, 1.0);
    const auto& claimed = plan.bandwidths();
    require(claimed.per_tree.size() == ref.per_tree.size(),
            "per-tree bandwidth count mismatch");
    for (std::size_t i = 0; i < ref.per_tree.size(); ++i) {
      require(claimed.per_tree[i] == ref.per_tree[i],
              "tree " + str(i) + " bandwidth " + str(claimed.per_tree[i]) +
                  " != reference " + str(ref.per_tree[i]));
    }
    require(claimed.aggregate == ref.aggregate,
            "aggregate " + str(claimed.aggregate) + " != reference " +
                str(ref.aggregate));
    return "Algorithm 1 reference agrees, aggregate = " +
           str(ref.aggregate);
  });

  run_check(out, "bandwidth.rate_upper_bound", [&] {
    // Zhou & Sun style aggregation bound: no in-network schedule can beat
    // B * min(deg_min, E/(N-1)) (per-node cut / spanning-flow argument).
    // Algorithm 1's aggregate must sit at or below it.
    const double bound = pfar::model::allreduce_rate_upper_bound(g, 1.0);
    const double alg1 = plan.aggregate_bandwidth();
    require(alg1 <= bound + 1e-9,
            "Algorithm 1 aggregate " + str(alg1) +
                " exceeds the rate upper bound " + str(bound));
    return "aggregate " + str(alg1) + " <= upper bound " + str(bound);
  });

  run_check(out, "flow.crosscheck", [&] {
    // The flow tier's structural accounting must agree with the cycle
    // engine exactly, and its fluid bandwidth must respect both Algorithm 1
    // and the rate upper bound (it models the same schedule).
    const long long m = 20000;
    const auto run_with = [&](pfar::simnet::SimEngine engine) {
      pfar::simnet::SimConfig cfg;
      cfg.engine = engine;
      pfar::simnet::AllreduceSimulator sim(
          g, pfar::collectives::to_embeddings(trees), cfg);
      return sim.run(plan.split(m));
    };
    const auto flow = run_with(pfar::simnet::SimEngine::kFlow);
    const auto fast = run_with(pfar::simnet::SimEngine::kFastForward);
    require(flow.link_flits == fast.link_flits,
            "flow tier per-link flit totals diverge from the cycle engine");
    require(flow.num_vcs == fast.num_vcs &&
                flow.max_vcs_per_link == fast.max_vcs_per_link,
            "flow tier VC accounting diverges from the cycle engine");
    const double bound = pfar::model::allreduce_rate_upper_bound(g, 1.0);
    const double alg1 = plan.aggregate_bandwidth();
    require(flow.aggregate_bandwidth > 0.0 &&
                flow.aggregate_bandwidth <= alg1 + 1e-9 &&
                flow.aggregate_bandwidth <= bound + 1e-9,
            "flow sim_bw " + str(flow.aggregate_bandwidth) +
                " outside (0, min(alg1 " + str(alg1) + ", bound " +
                str(bound) + ")]");
    const double rel = (fast.aggregate_bandwidth - flow.aggregate_bandwidth) /
                       fast.aggregate_bandwidth;
    require(rel > -0.02 && rel < 0.02,
            "flow sim_bw " + str(flow.aggregate_bandwidth) +
                " drifts >2% from cycle sim_bw " +
                str(fast.aggregate_bandwidth));
    return "flow sim_bw " + str(flow.aggregate_bandwidth) + " vs cycle " +
           str(fast.aggregate_bandwidth) + ", alg1 " + str(alg1) +
           ", upper bound " + str(bound);
  });

  run_check(out, "serialize.roundtrip", [&] {
    const std::string text = pfar::core::serialize_plan(plan, starter);
    const auto parsed = pfar::core::parse_plan(text);
    require(parsed.plan.q() == q, "round trip changed q");
    require(parsed.plan.solution() == plan.solution(),
            "round trip changed solution");
    require(parsed.starter == starter, "round trip changed starter");
    require(parsed.plan.num_trees() == plan.num_trees(),
            "round trip changed tree count");
    for (int i = 0; i < plan.num_trees(); ++i) {
      const auto& a = trees[static_cast<std::size_t>(i)];
      const auto& b = parsed.plan.trees()[static_cast<std::size_t>(i)];
      require(a.root() == b.root() && a.parents() == b.parents(),
              "round trip changed tree " + str(i));
    }
    const std::string again =
        pfar::core::serialize_plan(parsed.plan, parsed.starter);
    require(again == text, "re-serialization is not byte-identical");
    return str(text.size()) + " bytes, byte-exact round trip";
  });
}

// ---------------------------------------------------------------------------
// Fault-resilience checks (--faults): the runtime fault-injection layer and
// the recovery driver, audited on the low-depth plan for this q. These
// mirror tests/fault_injection_test.cpp so a deployed binary can re-verify
// the resilience claims without the test tree.
// ---------------------------------------------------------------------------

void check_faults(std::vector<Check>& out, const AllreducePlan& plan) {
  const auto& g = plan.topology();

  // An uplink tree 0 actually uses: downing it is guaranteed to hurt.
  const auto victim = [&plan]() -> pfar::graph::Edge {
    const auto& parents = plan.trees()[0].parents();
    for (int v = 0; v < static_cast<int>(parents.size()); ++v) {
      const int p = parents[static_cast<std::size_t>(v)];
      if (p >= 0) return pfar::graph::Edge(v, p);
    }
    throw Violation("tree 0 has no edges");
  }();

  const auto faulted_config = [&victim] {
    pfar::simnet::SimConfig cfg;
    cfg.progress_timeout = 800;
    cfg.faults.events.push_back(
        {200, victim.u, victim.v, pfar::simnet::FaultType::kLinkDown});
    return cfg;
  };

  const auto run_engine = [&](pfar::simnet::SimEngine engine) {
    pfar::simnet::SimConfig cfg = faulted_config();
    cfg.engine = engine;
    pfar::simnet::AllreduceSimulator sim(
        g, pfar::collectives::to_embeddings(plan.trees()), cfg);
    return sim.run(plan.split(1500));
  };

  run_check(out, "faults.differential", [&] {
    const auto fast = run_engine(pfar::simnet::SimEngine::kFastForward);
    const auto ref = run_engine(pfar::simnet::SimEngine::kReference);
    require(fast.cycles == ref.cycles,
            "cycles diverge: fast " + str(fast.cycles) + " vs reference " +
                str(ref.cycles));
    require(fast.link_flits == ref.link_flits, "per-link flit counts diverge");
    require(fast.tree_failed == ref.tree_failed, "failed-tree sets diverge");
    require(fast.tree_fail_cycle == ref.tree_fail_cycle,
            "failure detection cycles diverge");
    require(fast.tree_completed == ref.tree_completed,
            "completed prefixes diverge");
    require(fast.dropped_flits == ref.dropped_flits &&
                fast.link_dropped_flits == ref.link_dropped_flits,
            "drop accounting diverges");
    require(fast.canceled_flits == ref.canceled_flits &&
                fast.canceled_packets == ref.canceled_packets,
            "cancel accounting diverges");
    return "fault-injected run bit-identical across engines, " +
           str(ref.cycles) + " cycles";
  });

  run_check(out, "faults.drop_accounting", [&] {
    const auto res = run_engine(pfar::simnet::SimEngine::kFastForward);
    long long per_link = 0;
    for (const long long d : res.link_dropped_flits) {
      require(d >= 0, "negative per-link drop count");
      per_link += d;
    }
    require(per_link == res.dropped_flits,
            "per-link drops " + str(per_link) + " != total " +
                str(res.dropped_flits));
    require(res.values_correct, "a corrupt value reached a root");
    int failed_trees = 0;
    for (const char f : res.tree_failed) failed_trees += f ? 1 : 0;
    require(failed_trees >= 1, "no tree detected the scripted failure");
    require(res.links_down.size() == 1 && res.links_down[0] == victim,
            "links_down does not record the scripted failure");
    return str(res.dropped_flits) + " in-flight flits dropped, " +
           str(failed_trees) + " trees failed, all accounted";
  });

  run_check(out, "faults.recovery_single_link", [&] {
    pfar::collectives::ResilienceConfig rc;
    rc.policy = pfar::collectives::RecoveryPolicy::kRepack;
    const auto stats = pfar::collectives::run_resilient_allreduce(
        g, plan.trees(), 1500, faulted_config(), rc);
    require(stats.recovered, "driver did not recover");
    require(stats.values_correct, "recovered values are not exact");
    require(stats.attempts >= 2, "no replay attempt was needed?");
    require(stats.detection_cycle >= 200,
            "detection cycle " + str(stats.detection_cycle) +
                " precedes the fault");
    require(stats.chunks_replayed > 0, "nothing was replayed");
    require(stats.failed_links.size() == 1 && stats.failed_links[0] == victim,
            "failed-link attribution is wrong");
    require(stats.degraded_aggregate_bandwidth > 0.0 &&
                stats.degraded_aggregate_bandwidth <=
                    plan.aggregate_bandwidth(),
            "degraded bandwidth outside (0, healthy]");
    return "recovered in " + str(stats.attempts) + " attempts, " +
           str(stats.chunks_replayed) + " chunks replayed, detected at cycle " +
           str(stats.detection_cycle);
  });

  run_check(out, "faults.degradation_bounded", [&] {
    // Greedy repack is not strictly monotone in the failure count (removing
    // an edge can redirect the greedy packing to a better solution), but it
    // must stay within (0, healthy] on every accumulated failure set.
    const double healthy = plan.aggregate_bandwidth();
    std::vector<pfar::graph::Edge> failed;
    double floor = healthy;
    for (int i = 0; i < 4; ++i) {
      failed.push_back(g.edge((i * 23 + 5) % g.num_edges()));
      std::sort(failed.begin(), failed.end());
      failed.erase(std::unique(failed.begin(), failed.end()), failed.end());
      const auto degraded = pfar::core::degrade_repack(g, failed);
      require(degraded.bandwidths.aggregate <= healthy + 1e-9,
              "repack bandwidth exceeds the healthy aggregate after failure " +
                  str(i));
      require(degraded.bandwidths.aggregate > 0.0,
              "repack bandwidth collapsed to zero");
      floor = std::min(floor, degraded.bandwidths.aggregate);
    }
    return "repack aggregate within (0, " + str(healthy) + "] over " +
           str(failed.size()) + " accumulated failures, floor " + str(floor);
  });
}

// ---------------------------------------------------------------------------
// JSON report.
// ---------------------------------------------------------------------------

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

void write_json(std::ostream& os, const std::vector<Report>& reports) {
  int passed = 0, failed = 0;
  for (const auto& r : reports) {
    for (const auto& c : r.checks) (c.pass ? passed : failed) += 1;
  }
  os << "{\n";
  os << "  \"tool\": \"pfar_audit\",\n";
  os << "  \"builder\": \"" << pfar::core::kBuilderVersion << "\",\n";
  os << "  \"reports\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const auto& r = reports[i];
    os << "    {\n";
    os << "      \"solution\": \"" << json_escape(r.solution) << "\",\n";
    os << "      \"q\": " << r.q << ",\n";
    os << "      \"starter\": " << r.starter << ",\n";
    os << "      \"checks\": [\n";
    for (std::size_t j = 0; j < r.checks.size(); ++j) {
      const auto& c = r.checks[j];
      os << "        {\"name\": \"" << json_escape(c.name) << "\", \"pass\": "
         << (c.pass ? "true" : "false") << ", \"detail\": \""
         << json_escape(c.detail) << "\"}"
         << (j + 1 < r.checks.size() ? "," : "") << "\n";
    }
    os << "      ]\n";
    os << "    }" << (i + 1 < reports.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"passed\": " << passed << ",\n";
  os << "  \"failed\": " << failed << ",\n";
  os << "  \"ok\": " << (failed == 0 ? "true" : "false") << "\n";
  os << "}\n";
}

void usage() {
  std::cerr
      << "pfar_audit: invariant audit for PolarFly Allreduce plans\n\n"
         "  pfar_audit --q N [--solution low-depth|edge-disjoint|"
         "single-tree|all]\n"
         "             [--starter I] [--threads T] [--faults] [--out FILE]\n"
         "  pfar_audit --plan FILE [--out FILE]\n\n"
         "Exit status: 0 all checks passed, 1 violations found, "
         "2 usage/IO error.\n";
}

}  // namespace

int main(int argc, char** argv) {
  const pfar::util::Args args(argc, argv);
  if (args.has("help")) {
    usage();
    return 0;
  }

  // Contract violations raised while building or auditing become ordinary
  // exceptions, so they are reported as named failed checks instead of
  // aborting the audit run half way.
  const pfar::util::contracts::ScopedThrowHandler throw_on_violation;

  std::vector<Report> reports;

  if (args.has("plan")) {
    const std::string path = args.get_string("plan", "");
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "pfar_audit: cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    Report r;
    r.solution = "plan-file";
    bool parsed_ok = false;
    pfar::core::ParsedPlan parsed;
    run_check(r.checks, "serialize.parse", [&] {
      parsed = pfar::core::parse_plan(buf.str());
      parsed_ok = true;
      return "checksum verified, " + str(parsed.plan.num_trees()) +
             " trees for q = " + str(parsed.plan.q());
    });
    if (parsed_ok) {
      r.solution = solution_flag(parsed.plan.solution());
      r.q = parsed.plan.q();
      r.starter = parsed.starter;
      check_plan(r.checks, parsed.plan, parsed.starter);
    }
    reports.push_back(std::move(r));
  } else if (args.has("q")) {
    const int q = static_cast<int>(args.get_int("q", 0));
    const int starter = static_cast<int>(args.get_int("starter", 0));
    const int threads = args.threads();
    const std::string want = args.get_string("solution", "all");

    std::vector<Solution> solutions;
    if (want == "all") {
      solutions = {Solution::kLowDepth, Solution::kEdgeDisjoint,
                   Solution::kSingleTree};
    } else if (want == "low-depth") {
      solutions = {Solution::kLowDepth};
    } else if (want == "edge-disjoint") {
      solutions = {Solution::kEdgeDisjoint};
    } else if (want == "single-tree") {
      solutions = {Solution::kSingleTree};
    } else {
      std::cerr << "pfar_audit: unknown --solution '" << want << "'\n";
      usage();
      return 2;
    }

    {
      Report design;
      design.solution = "design-point";
      design.q = q;
      design.starter = starter;
      check_table1(design.checks, q);
      reports.push_back(std::move(design));
    }

    for (Solution s : solutions) {
      Report r;
      r.solution = solution_flag(s);
      r.q = q;
      r.starter = starter;
      bool built = false;
      AllreducePlan plan;
      run_check(r.checks, "planner.build", [&] {
        plan = pfar::core::AllreducePlanner(q)
                   .solution(s)
                   .starter_quadric(starter)
                   .threads(threads)
                   .build();
        built = true;
        return str(plan.num_trees()) + " trees built";
      });
      if (built) check_plan(r.checks, plan, starter);
      reports.push_back(std::move(r));
    }

    if (args.has("faults")) {
      // Runtime fault-injection + recovery audit on the low-depth plan.
      Report r;
      r.solution = "faults";
      r.q = q;
      r.starter = starter;
      bool built = false;
      AllreducePlan plan;
      run_check(r.checks, "planner.build", [&] {
        plan = pfar::core::AllreducePlanner(q)
                   .starter_quadric(starter)
                   .threads(threads)
                   .build();
        built = true;
        return str(plan.num_trees()) + " trees built";
      });
      if (built) check_faults(r.checks, plan);
      reports.push_back(std::move(r));
    }
  } else {
    usage();
    return 2;
  }

  int failed = 0;
  for (const auto& r : reports) failed += r.failed();

  if (args.has("out")) {
    std::ofstream out(args.get_string("out", ""));
    if (!out) {
      std::cerr << "pfar_audit: cannot write --out file\n";
      return 2;
    }
    write_json(out, reports);
  } else {
    write_json(std::cout, reports);
  }
  return failed == 0 ? 0 : 1;
}
