// pfar_report: renders a human-readable run report from the observability
// artifacts a simulation run writes (Chrome trace JSON + metrics JSONL).
//
//   pfar_report --trace trace.json --metrics metrics.jsonl [--top 10]
//               [--out report.txt]
//
// Either artifact may be omitted; sections derived from the missing half
// are empty. See docs/observability.md for the artifact formats.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obsv/report.hpp"
#include "util/args.hpp"

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("pfar_report: cannot open " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const pfar::util::Args args(argc, argv);
  if (args.has("help") ||
      (!args.has("trace") && !args.has("metrics"))) {
    std::cout
        << "usage: pfar_report [--trace trace.json] [--metrics m.jsonl]\n"
           "                   [--top K] [--out report.txt]\n"
           "Renders a run report (congested links, tree skew, recovery\n"
           "timeline, planner phases) from observability artifacts.\n";
    return args.has("help") ? 0 : 2;
  }

  try {
    std::string trace_json, metrics_jsonl;
    if (args.has("trace")) trace_json = slurp(args.get_string("trace", ""));
    if (args.has("metrics")) {
      metrics_jsonl = slurp(args.get_string("metrics", ""));
    }

    const pfar::obsv::RunReport report =
        pfar::obsv::build_report(trace_json, metrics_jsonl);
    const int top_k = static_cast<int>(args.get_int("top", 10));

    if (args.has("out")) {
      const std::string path = args.get_string("out", "");
      std::ofstream out(path);
      if (!out) {
        throw std::runtime_error("pfar_report: cannot write " + path);
      }
      pfar::obsv::render_report(report, out, top_k);
    } else {
      pfar::obsv::render_report(report, std::cout, top_k);
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
