#!/usr/bin/env python3
"""Bench-regression gate: compare a current BENCH_*.json against a committed
baseline (bench/baselines/).

Three classes of fields, checked differently:

  * deterministic fields -- pure functions of the simulated/planned system,
    identical on every machine: `correct`, `alg1_bw`, `sim_bw`,
    `efficiency` per point, and the plan-cache hit/miss counters. Any
    mismatch is a hard failure (the benchmark's *result* changed, not its
    speed).
  * ratio medians -- machine-local speedup ratios (`speedup_cold`,
    `speedup_warm`, `speedup_sweep10`). The median across the q grid must
    stay within --tolerance (default +/-20%) of the baseline median.
    Ratios divide out absolute machine speed, so this catches "the fast
    path stopped being fast" without pinning wall clocks.
  * wall-clock fields -- `*_ms` absolutes. Machine-dependent; only checked
    when --wall-tolerance is given (e.g. 3.0 = current may be up to 3x the
    baseline), which CI uses as a coarse runaway guard.

Exit status: 0 ok, 1 regression, 2 usage/input error.

Usage:
  check_bench_regression.py --baseline bench/baselines/BENCH_construction.json \
      --current BENCH_construction.json [--tolerance 0.2] [--wall-tolerance 3.0]
"""

import argparse
import json
import statistics
import sys

RATIO_FIELDS = ("speedup_cold", "speedup_warm", "speedup_sweep10")
# Service-throughput fields are deterministic too: integer virtual-cycle
# arithmetic over simulator results, identical on every machine and thread
# count (docs/service_layer.md, "Determinism").
EXACT_POINT_FIELDS = ("alg1_bw", "sim_bw", "efficiency",
                      "jobs_per_kcycle", "p50_cycles", "p99_cycles",
                      "makespan_cycles", "utilization", "completed",
                      "rejected", "batches", "coalesced_jobs",
                      # Congested-allreduce bench: background traffic and
                      # the adaptation loop are integer-rational / fixed
                      # float-op-order constructs, deterministic on every
                      # machine (docs/congestion_adaptation.md).
                      "static_bw", "adaptive_bw", "win",
                      "hot_links", "replanned_trees", "probe_cycles",
                      # Training-replay bench: BSP virtual-cycle arithmetic
                      # over deterministic collective runs, bit-identical
                      # on every machine (docs/training_replay.md).
                      "time_to_epoch", "overlap_eff", "exposed_comm_cycles",
                      "comm_wall_cycles", "comm_busy_cycles",
                      "total_flits", "buckets", "slow_permille")
WALL_POINT_FIELDS = ("wall_ms", "seed_ms", "cold_ms", "warm_ms")
WALL_TOP_FIELDS = ("total_wall_ms",)
# Relative slack for "exact" floats: they are deterministic but printed
# with %.4f, so allow one unit in the last printed place.
EXACT_REL = 1e-3

failures = []


def fail(msg):
    failures.append(msg)


def point_key(point):
    """Identity of a bench point within its grid.

    The simulation engine is part of the identity: a flow-tier point and a
    cycle-tier point at the same (q, solution, m) are different measurements
    with different accuracy contracts, so they are never compared to each
    other. Points without an "engine" field (pre-engine baselines, and
    benches that do not run the simulator) key on the grid alone.
    """
    return tuple(point.get(k)
                 for k in ("engine", "q", "solution", "m", "policy", "load",
                           "jobs", "pattern", "overlap", "straggler")
                 if k in point)


def match_points(base, cur):
    cur_by_key = {point_key(p): p for p in cur.get("points", [])}
    pairs = []
    for bp in base.get("points", []):
        cp = cur_by_key.get(point_key(bp))
        if cp is None:
            fail(f"point {point_key(bp)} missing from current run")
            continue
        pairs.append((bp, cp))
    return pairs


def check_exact(pairs):
    for bp, cp in pairs:
        key = point_key(bp)
        if "correct" in bp:
            if cp.get("correct") is not True:
                fail(f"point {key}: correct={cp.get('correct')} (hard fail)")
            if bp.get("correct") is not True:
                fail(f"baseline point {key}: correct={bp.get('correct')} "
                     "(bad baseline)")
        for field in EXACT_POINT_FIELDS:
            if field not in bp:
                continue
            b, c = bp[field], cp.get(field)
            if c is None:
                fail(f"point {key}: field {field} missing from current run")
                continue
            if isinstance(b, int) and isinstance(c, int):
                # Integer fields (virtual cycles, flit/job counts) are
                # bit-deterministic: any drift is a hard failure, however
                # small relative to the magnitude.
                if b != c:
                    fail(f"point {key}: deterministic field {field} changed "
                         f"{b} -> {c}")
                continue
            scale = max(abs(b), abs(c), 1e-12)
            if abs(b - c) / scale > EXACT_REL:
                fail(f"point {key}: deterministic field {field} changed "
                     f"{b} -> {c}")


def check_cache(base, cur):
    bcache, ccache = base.get("cache"), cur.get("cache")
    if bcache is None:
        return
    if ccache is None:
        fail("cache counters missing from current run")
        return
    for field, bval in bcache.items():
        cval = ccache.get(field)
        if cval != bval:
            fail(f"cache counter {field} changed {bval} -> {cval} "
                 "(deterministic, hard fail)")


def median_of(points, field):
    values = [p[field] for p in points if field in p]
    return statistics.median(values) if values else None


def check_ratio_medians(base, cur, tolerance):
    for field in RATIO_FIELDS:
        bmed = median_of(base.get("points", []), field)
        cmed = median_of(cur.get("points", []), field)
        if bmed is None:
            continue
        if cmed is None:
            fail(f"ratio field {field} missing from current run")
            continue
        if bmed <= 0:
            continue
        ratio = cmed / bmed
        if ratio < 1.0 - tolerance or ratio > 1.0 + tolerance:
            fail(f"median {field} drifted {bmed:.2f} -> {cmed:.2f} "
                 f"({ratio:.2f}x, tolerance +/-{tolerance:.0%})")


def check_wall(base, cur, pairs, wall_tolerance):
    if wall_tolerance is None:
        return
    for field in WALL_TOP_FIELDS:
        if field in base and field in cur and base[field] > 0:
            if cur[field] > base[field] * wall_tolerance:
                fail(f"{field} {base[field]:.1f} -> {cur[field]:.1f} ms "
                     f"(over {wall_tolerance}x baseline)")
    for field in WALL_POINT_FIELDS:
        bvals = [bp[field] for bp, _ in pairs if field in bp]
        cvals = [cp[field] for _, cp in pairs if field in cp]
        if not bvals or not cvals:
            continue
        bmed, cmed = statistics.median(bvals), statistics.median(cvals)
        if bmed > 0 and cmed > bmed * wall_tolerance:
            fail(f"median {field} {bmed:.1f} -> {cmed:.1f} ms "
                 f"(over {wall_tolerance}x baseline)")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--current", required=True)
    ap.add_argument("--tolerance", type=float, default=0.2,
                    help="relative band for ratio medians (default 0.2)")
    ap.add_argument("--wall-tolerance", type=float, default=None,
                    help="max current/baseline factor for wall-clock "
                         "fields; unchecked if omitted")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.current) as f:
            cur = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_regression: {e}", file=sys.stderr)
        return 2

    pairs = match_points(base, cur)
    check_exact(pairs)
    check_cache(base, cur)
    check_ratio_medians(base, cur, args.tolerance)
    check_wall(base, cur, pairs, args.wall_tolerance)

    if failures:
        print(f"FAIL {args.current} vs {args.baseline}:")
        for msg in failures:
            print(f"  - {msg}")
        return 1
    print(f"OK {args.current} vs {args.baseline} "
          f"({len(pairs)} points, tolerance +/-{args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
