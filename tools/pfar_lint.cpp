// pfar_lint — project-law lint for the pfar tree (docs/static_analysis.md).
//
// A standalone, dependency-free rule engine over the repository's own
// sources: it encodes the determinism and concurrency conventions that
// generic tools (clang-tidy, cppcheck) have no notion of. Driven off the
// compile database (--compile-db): every translation unit the build
// compiles is linted, plus the transitive closure of first-party
// #include "..." headers they pull in — so coverage is exactly what ships,
// with no clang plugin or AST dependency. Explicit file/directory
// arguments are supported for fixtures and spot checks.
//
// Rules (each individually selectable with --rule, see --list-rules):
//
//   no-unordered-iteration  iterating a std::unordered_{map,set,...} in
//                           result-affecting code under src/ — hash-table
//                           order is the classic silent-nondeterminism bug
//                           (golden tests and the bench gate both depend
//                           on bit-identical output).
//   no-wallclock-in-sim     rand/time/system_clock/random_device and
//                           friends outside the allowlisted obsv/bench
//                           timing sites; simulation results must be pure
//                           functions of config and seed.
//   no-pointer-ordering     ordered containers / comparators keyed by
//                           pointer value — iteration order would depend
//                           on the allocator.
//   contract-coverage       public entry points of core/collectives/
//                           service/simnet must assert their
//                           preconditions via the contract layer.
//   mutex-naming            every mutex in src/ must be the annotated
//                           util::Mutex (thread_annotations.hpp) so
//                           Clang's -Wthread-safety can see it; bare
//                           std::mutex is invisible to the analysis.
//
// Suppressions: an allow-comment — the `pfar-lint` tag, a colon, then
// `allow(<rule>) <reason>` — on the offending line or the line above
// (reason mandatory), or a committed allowlist
// (--allowlist, default tools/pfar_lint_allowlist.txt next to the
// binary's repo) of `<path-prefix> <rule> <reason>` lines.
//
// Exit codes: 0 clean, 1 findings, 2 usage/configuration error.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string_view s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// ---------------------------------------------------------------------------
// Source model: raw lines, code lines (comments + literals blanked with
// spaces, same length), and per-line comment text (for suppressions).
// ---------------------------------------------------------------------------

struct SourceFile {
  std::string path;  // normalized: '/'-separated, repo-relative when possible
  std::vector<std::string> raw;
  std::vector<std::string> code;
  std::vector<std::string> comment;
};

void lex_file(SourceFile& f) {
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
  State st = State::kCode;
  std::string raw_delim;  // for raw string literals: )delim"
  f.code.resize(f.raw.size());
  f.comment.resize(f.raw.size());
  for (std::size_t li = 0; li < f.raw.size(); ++li) {
    const std::string& line = f.raw[li];
    std::string& code = f.code[li];
    std::string& comment = f.comment[li];
    code.assign(line.size(), ' ');
    if (st == State::kLineComment || st == State::kString ||
        st == State::kChar) {
      st = State::kCode;  // none of these survive a newline (no \ handling)
    }
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      switch (st) {
        case State::kCode:
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            comment.append(line.substr(i + 2));
            i = line.size();
            break;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            st = State::kBlockComment;
            ++i;
            break;
          }
          if (c == '"') {
            // Raw string literal? look back for R / u8R / LR / uR / UR.
            std::size_t r = i;
            if (r > 0 && line[r - 1] == 'R' &&
                (r < 2 || !is_ident_char(line[r - 2]) || line[r - 2] == '8' ||
                 line[r - 2] == 'u' || line[r - 2] == 'U' ||
                 line[r - 2] == 'L')) {
              std::size_t p = i + 1;
              std::string delim;
              while (p < line.size() && line[p] != '(') delim += line[p++];
              raw_delim = ")" + delim + "\"";
              st = State::kRawString;
              i = p;  // at '(' or end
              break;
            }
            st = State::kString;
            code[i] = '"';
            break;
          }
          if (c == '\'') {
            // Heuristic: a digit separator (1'000) is not a char literal.
            if (i > 0 && std::isdigit(static_cast<unsigned char>(line[i - 1])) != 0 &&
                i + 1 < line.size() &&
                (std::isdigit(static_cast<unsigned char>(line[i + 1])) != 0)) {
              code[i] = c;
              break;
            }
            st = State::kChar;
            code[i] = '\'';
            break;
          }
          code[i] = c;
          break;
        case State::kLineComment:
          break;  // unreachable (handled above)
        case State::kBlockComment:
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            st = State::kCode;
            ++i;
          } else {
            comment += c;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            st = State::kCode;
            code[i] = '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            st = State::kCode;
            code[i] = '\'';
          }
          break;
        case State::kRawString: {
          const std::size_t hit = line.find(raw_delim, i);
          if (hit == std::string::npos) {
            i = line.size();
          } else {
            i = hit + raw_delim.size() - 1;
            st = State::kCode;
          }
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Findings, rules, suppressions
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

class Rule {
 public:
  virtual ~Rule() = default;
  virtual std::string_view id() const = 0;
  virtual std::string_view description() const = 0;
  virtual void check(const SourceFile& f, std::vector<Finding>& out) const = 0;

 protected:
  static void add(std::vector<Finding>& out, const SourceFile& f,
                  std::size_t line_idx, std::string_view rule,
                  std::string message) {
    out.push_back(Finding{f.path, static_cast<int>(line_idx) + 1,
                          std::string(rule), std::move(message)});
  }
};

/// Inline suppression: the `pfar-lint` tag, a colon, then a comma-
/// separated allow(...) list and a reason. Covers the comment's own line
/// and the next line. A missing reason or a rule id no registered rule
/// owns is itself reported (pseudo-rule `suppression`), so stale allows
/// can't accumulate silently.
struct Suppressions {
  // line (0-based) -> rule ids allowed on that line
  std::map<std::size_t, std::set<std::string>> by_line;
  std::vector<Finding> malformed;

  bool covers(const Finding& fi, std::size_t line_idx) const {
    for (std::size_t l : {line_idx, line_idx > 0 ? line_idx - 1 : line_idx}) {
      auto it = by_line.find(l);
      if (it != by_line.end() &&
          (it->second.count(fi.rule) != 0 || it->second.count("*") != 0)) {
        return true;
      }
    }
    return false;
  }
};

Suppressions scan_suppressions(const SourceFile& f,
                               const std::set<std::string>& known_rules) {
  Suppressions s;
  const std::string tag = "pfar-lint:";
  for (std::size_t li = 0; li < f.comment.size(); ++li) {
    const std::string& c = f.comment[li];
    const std::size_t at = c.find(tag);
    if (at == std::string::npos) continue;
    std::string rest = trim(c.substr(at + tag.size()));
    if (!starts_with(rest, "allow(")) {
      s.malformed.push_back(
          Finding{f.path, static_cast<int>(li) + 1, "suppression",
                  "malformed pfar-lint comment; expected "
                  "'pfar-lint: allow(<rule>) <reason>'"});
      continue;
    }
    const std::size_t close = rest.find(')');
    if (close == std::string::npos) {
      s.malformed.push_back(Finding{f.path, static_cast<int>(li) + 1,
                                    "suppression",
                                    "unterminated allow(...) list"});
      continue;
    }
    const std::string reason = trim(rest.substr(close + 1));
    std::stringstream ids(rest.substr(6, close - 6));
    std::string id;
    bool any = false;
    while (std::getline(ids, id, ',')) {
      id = trim(id);
      if (id.empty()) continue;
      any = true;
      if (id != "*" && known_rules.count(id) == 0) {
        s.malformed.push_back(
            Finding{f.path, static_cast<int>(li) + 1, "suppression",
                    "allow() names unknown rule '" + id + "'"});
        continue;
      }
      s.by_line[li].insert(id);
    }
    if (!any) {
      s.malformed.push_back(Finding{f.path, static_cast<int>(li) + 1,
                                    "suppression", "empty allow() list"});
    }
    if (reason.empty()) {
      s.malformed.push_back(
          Finding{f.path, static_cast<int>(li) + 1, "suppression",
                  "suppression without a reason; append why after allow()"});
    }
  }
  return s;
}

/// Committed allowlist: `<path-prefix> <rule|*> <reason...>` per line.
struct Allowlist {
  struct Entry {
    std::string prefix;
    std::string rule;
  };
  std::vector<Entry> entries;

  bool covers(const Finding& fi) const {
    for (const Entry& e : entries) {
      if ((e.rule == "*" || e.rule == fi.rule) &&
          starts_with(fi.file, e.prefix)) {
        return true;
      }
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Token scanning over code lines
// ---------------------------------------------------------------------------

struct TokenHit {
  std::size_t line = 0;  // 0-based
  std::size_t col = 0;
};

/// All occurrences of `ident` as a whole identifier in the code lines.
std::vector<TokenHit> find_ident(const SourceFile& f, std::string_view ident) {
  std::vector<TokenHit> hits;
  for (std::size_t li = 0; li < f.code.size(); ++li) {
    const std::string& line = f.code[li];
    std::size_t pos = 0;
    while ((pos = line.find(ident, pos)) != std::string::npos) {
      const bool left_ok = pos == 0 || !is_ident_char(line[pos - 1]);
      const std::size_t end = pos + ident.size();
      const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
      if (left_ok && right_ok) hits.push_back(TokenHit{li, pos});
      pos = end;
    }
  }
  return hits;
}

/// First non-space character after (line, col), scanning forward across
/// lines; returns '\0' at EOF.
char next_nonspace(const SourceFile& f, std::size_t line, std::size_t col) {
  for (std::size_t li = line; li < f.code.size(); ++li) {
    const std::string& l = f.code[li];
    for (std::size_t i = (li == line ? col : 0); i < l.size(); ++i) {
      if (std::isspace(static_cast<unsigned char>(l[i])) == 0) return l[i];
    }
  }
  return '\0';
}

/// Given the position of a '<' in f.code, returns the text of the template
/// argument list up to its matching '>' (exclusive), spanning lines, or
/// nullopt if unbalanced within `max_lines`.
std::optional<std::string> balanced_angle(const SourceFile& f,
                                          std::size_t line, std::size_t col,
                                          std::size_t max_lines = 12) {
  std::string out;
  int depth = 0;
  for (std::size_t li = line; li < f.code.size() && li < line + max_lines;
       ++li) {
    const std::string& l = f.code[li];
    for (std::size_t i = (li == line ? col : 0); i < l.size(); ++i) {
      const char c = l[i];
      if (c == '<') {
        ++depth;
        if (depth == 1) continue;
      } else if (c == '>') {
        // Ignore arrows and shift operators.
        if (i > 0 && (l[i - 1] == '-' || l[i - 1] == '>')) continue;
        --depth;
        if (depth == 0) return out;
      }
      if (depth >= 1) out += c;
    }
    out += ' ';
  }
  return std::nullopt;
}

/// First top-level (comma-split at angle depth 0) segment of a template
/// argument list.
std::string first_template_arg(const std::string& args) {
  int depth = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const char c = args[i];
    if (c == '<' || c == '(') ++depth;
    if (c == '>' || c == ')') --depth;
    if (c == ',' && depth == 0) return trim(args.substr(0, i));
  }
  return trim(args);
}

// ---------------------------------------------------------------------------
// Rule: no-unordered-iteration
// ---------------------------------------------------------------------------

class NoUnorderedIteration final : public Rule {
 public:
  std::string_view id() const override { return "no-unordered-iteration"; }
  std::string_view description() const override {
    return "no iteration over std::unordered_* containers in result-"
           "affecting code under src/ (hash order is nondeterministic)";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!starts_with(f.path, "src/")) return;
    // Pass 1: names declared with an unordered type on the declaration line.
    std::set<std::string> names;
    for (const char* type : {"unordered_map", "unordered_set",
                             "unordered_multimap", "unordered_multiset"}) {
      for (const TokenHit& h : find_ident(f, type)) {
        const std::string& l = f.code[h.line];
        std::size_t lt = l.find('<', h.col);
        if (lt == std::string::npos) continue;
        auto args = balanced_angle(f, h.line, lt);
        if (!args) continue;
        // The identifier after the closing '>' (skipping &, spaces) is the
        // declared name, if this is a declaration.
        std::string after;
        {
          // Re-scan to locate the char just past the matching '>'.
          int depth = 0;
          bool done = false;
          for (std::size_t li = h.line; li < f.code.size() && !done; ++li) {
            const std::string& cl = f.code[li];
            for (std::size_t i = (li == h.line ? lt : 0); i < cl.size(); ++i) {
              const char c = cl[i];
              if (c == '<') ++depth;
              if (c == '>') {
                if (i > 0 && (cl[i - 1] == '-' || cl[i - 1] == '>')) continue;
                --depth;
                if (depth == 0) {
                  after = cl.substr(i + 1);
                  // take next line too, declarations may wrap
                  if (li + 1 < f.code.size()) after += " " + f.code[li + 1];
                  done = true;
                  break;
                }
              }
            }
          }
        }
        std::string t = trim(after);
        while (!t.empty() && (t[0] == '&' || t[0] == '*')) t = trim(t.substr(1));
        std::string name;
        for (char c : t) {
          if (is_ident_char(c)) {
            name += c;
          } else {
            break;
          }
        }
        if (!name.empty()) names.insert(name);
      }
    }
    // Pass 2: range-for over an unordered temporary or a recorded name,
    // and explicit .begin() iteration over a recorded name.
    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& l = f.code[li];
      const std::size_t fpos = l.find("for");
      if (fpos != std::string::npos &&
          (fpos == 0 || !is_ident_char(l[fpos - 1])) &&
          (fpos + 3 >= l.size() || !is_ident_char(l[fpos + 3]))) {
        // Extract "for (<head>)": balance parens (range may span lines).
        std::size_t open = l.find('(', fpos);
        if (open != std::string::npos) {
          std::string head;
          int depth = 0;
          bool closed = false;
          for (std::size_t lj = li; lj < f.code.size() && lj < li + 6 && !closed;
               ++lj) {
            const std::string& cl = f.code[lj];
            for (std::size_t i = (lj == li ? open : 0); i < cl.size(); ++i) {
              const char c = cl[i];
              if (c == '(') ++depth;
              if (c == ')') {
                --depth;
                if (depth == 0) {
                  closed = true;
                  break;
                }
              }
              if (depth >= 1 && !(c == '(' && depth == 1)) head += c;
            }
            head += ' ';
          }
          const std::size_t colon = find_top_level_colon(head);
          if (closed && colon != std::string::npos) {
            const std::string range = trim(head.substr(colon + 1));
            if (range.find("unordered_") != std::string::npos) {
              add(out, f, li, id(),
                  "range-for over an unordered container expression; "
                  "iteration order is nondeterministic");
            } else {
              std::string base;
              for (char c : range) {
                if (is_ident_char(c)) {
                  base += c;
                } else {
                  break;
                }
              }
              if (!base.empty() && names.count(base) != 0) {
                add(out, f, li, id(),
                    "range-for over unordered container '" + base +
                        "'; iteration order is nondeterministic");
              }
            }
          }
        }
      }
      // name.begin() / name.cbegin() / name.rbegin()
      for (const std::string& n : names) {
        std::size_t pos = 0;
        while ((pos = l.find(n, pos)) != std::string::npos) {
          const std::size_t end = pos + n.size();
          const bool ident_ok =
              (pos == 0 || !is_ident_char(l[pos - 1])) &&
              (end < l.size() && !is_ident_char(l[end]));
          if (ident_ok) {
            const std::string rest = l.substr(end);
            if (starts_with(rest, ".begin(") || starts_with(rest, ".cbegin(") ||
                starts_with(rest, ".rbegin(")) {
              add(out, f, li, id(),
                  "iterator walk over unordered container '" + n +
                      "'; iteration order is nondeterministic");
            }
          }
          pos = end;
        }
      }
    }
  }

 private:
  /// Position of the range-for ':' in a for-head (not '::', not inside
  /// parens/brackets/braces/angles).
  static std::size_t find_top_level_colon(const std::string& head) {
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == ':' && depth == 0) {
        if (i + 1 < head.size() && head[i + 1] == ':') {
          ++i;
          continue;
        }
        if (i > 0 && head[i - 1] == ':') continue;
        return i;
      }
    }
    return std::string::npos;
  }
};

// ---------------------------------------------------------------------------
// Rule: no-wallclock-in-sim
// ---------------------------------------------------------------------------

class NoWallclockInSim final : public Rule {
 public:
  std::string_view id() const override { return "no-wallclock-in-sim"; }
  std::string_view description() const override {
    return "no wall-clock or ambient-entropy calls (rand, time, "
           "system_clock, random_device, ...) outside allowlisted "
           "obsv/bench timing sites; results must be functions of config "
           "and seed only";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!starts_with(f.path, "src/") && !starts_with(f.path, "tools/") &&
        !starts_with(f.path, "bench/")) {
      return;
    }
    // Unconditionally banned identifiers, wherever they appear.
    for (const char* ident :
         {"random_device", "system_clock", "steady_clock",
          "high_resolution_clock", "gettimeofday", "clock_gettime",
          "timespec_get", "localtime", "gmtime", "mktime", "srand",
          "rand_r", "drand48"}) {
      for (const TokenHit& h : find_ident(f, ident)) {
        add(out, f, h.line, id(),
            std::string("nondeterministic time/entropy source '") + ident +
                "'; derive values from the config seed or virtual cycles");
      }
    }
    // `rand`, `random`, `time`, `clock`: only as direct calls, and not as
    // member accesses (sim code legitimately has .time()/clock_ fields).
    for (const char* ident : {"rand", "random", "time", "clock"}) {
      for (const TokenHit& h : find_ident(f, ident)) {
        const std::string& l = f.code[h.line];
        if (next_nonspace(f, h.line, h.col + std::string(ident).size()) !=
            '(') {
          continue;
        }
        // Reject member calls: `.time(` / `->clock(`; allow `std::time(`.
        std::size_t p = h.col;
        bool member = false;
        bool std_qualified = false;
        if (p >= 2 && l.compare(p - 2, 2, "::") == 0) {
          std::size_t q = p - 2;
          std::string qual;
          while (q > 0 && is_ident_char(l[q - 1])) {
            qual.insert(qual.begin(), l[q - 1]);
            --q;
          }
          if (qual == "std") {
            std_qualified = true;
          } else {
            member = true;  // SomeClass::time(...) — a project function
          }
        } else if (p >= 1 && (l[p - 1] == '.' ||
                              (p >= 2 && l.compare(p - 2, 2, "->") == 0))) {
          member = true;
        }
        if (member) continue;
        // Unqualified declarations like `long long time = ...` were already
        // excluded by the '(' requirement; `time(x)` style macros in sim
        // code do not exist.
        (void)std_qualified;
        add(out, f, h.line, id(),
            std::string("call to wall-clock/entropy function '") + ident +
                "'; use util/rng.hpp seeded streams or virtual cycles");
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: no-pointer-ordering
// ---------------------------------------------------------------------------

class NoPointerOrdering final : public Rule {
 public:
  std::string_view id() const override { return "no-pointer-ordering"; }
  std::string_view description() const override {
    return "no ordered containers or comparators keyed by raw pointer "
           "value (allocation order leaks into iteration order)";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!starts_with(f.path, "src/") && !starts_with(f.path, "tools/")) {
      return;
    }
    for (const char* type : {"map", "set", "multimap", "multiset",
                             "priority_queue", "less", "greater"}) {
      for (const TokenHit& h : find_ident(f, type)) {
        const std::string& l = f.code[h.line];
        // Require std:: (or pfar-free) qualification to skip project types
        // named e.g. TreeSet; `std::` immediately before the token.
        if (h.col < 5 || l.compare(h.col - 5, 5, "std::") != 0) continue;
        const std::size_t lt = l.find('<', h.col);
        if (lt == std::string::npos ||
            trim(l.substr(h.col + std::string(type).size(),
                          lt - h.col - std::string(type).size()))
                    .empty() == false) {
          continue;
        }
        auto args = balanced_angle(f, h.line, lt);
        if (!args) continue;
        const std::string key = first_template_arg(*args);
        if (!key.empty() && key.back() == '*') {
          add(out, f, h.line, id(),
              std::string("std::") + type + " keyed by pointer type '" + key +
                  "'; key by stable index or id instead");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Rule: contract-coverage
// ---------------------------------------------------------------------------

class ContractCoverage final : public Rule {
 public:
  std::string_view id() const override { return "contract-coverage"; }
  std::string_view description() const override {
    return "public entry points (namespace-scope function definitions in "
           "src/{core,collectives,service,simnet,adapt}/*.cpp with a "
           "non-trivial body) must assert preconditions via PFAR_REQUIRE "
           "/ PFAR_ENSURE / PFAR_INVARIANT";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    static const char* kDirs[] = {"src/core/", "src/collectives/",
                                  "src/service/", "src/simnet/",
                                  "src/adapt/", "src/workload/"};
    bool in_scope = false;
    for (const char* d : kDirs) in_scope = in_scope || starts_with(f.path, d);
    if (!in_scope || !ends_with(f.path, ".cpp")) return;

    // A tiny structural scan: track brace nesting with a kind per scope.
    enum class ScopeKind { kNamespace, kAnonNamespace, kType, kFunction, kOther };
    struct Scope {
      ScopeKind kind;
      std::size_t header_line;
      std::string name;        // functions only
      bool has_contract;       // functions only
      int body_lines;          // functions only: non-blank code lines
    };
    std::vector<Scope> stack;
    std::string header;           // accumulated tokens since last ; { }
    std::size_t header_line = 0;  // line where the accumulation started
    bool header_fresh = true;

    auto at_namespace_scope = [&] {
      for (const Scope& s : stack) {
        if (s.kind != ScopeKind::kNamespace &&
            s.kind != ScopeKind::kAnonNamespace) {
          return false;
        }
      }
      return true;
    };
    auto in_anon_namespace = [&] {
      for (const Scope& s : stack) {
        if (s.kind == ScopeKind::kAnonNamespace) return true;
      }
      return false;
    };

    for (std::size_t li = 0; li < f.code.size(); ++li) {
      const std::string& l = f.code[li];
      for (std::size_t i = 0; i < l.size(); ++i) {
        const char c = l[i];
        if (header_fresh && std::isspace(static_cast<unsigned char>(c)) == 0) {
          header_line = li;
          header_fresh = false;
        }
        if (c == '{') {
          const std::string h = trim(header);
          Scope s{ScopeKind::kOther, header_line, "", false, 0};
          if (!at_namespace_scope()) {
            // inside a function/type: plain block, lambda, initializer...
            s.kind = ScopeKind::kOther;
          } else if (h.find("namespace") != std::string::npos &&
                     h.find('(') == std::string::npos) {
            const std::string after =
                trim(h.substr(h.find("namespace") + 9));
            s.kind = after.empty() ? ScopeKind::kAnonNamespace
                                   : ScopeKind::kNamespace;
          } else if (looks_like_type(h)) {
            s.kind = ScopeKind::kType;
          } else {
            const std::string name = function_name(h);
            if (!name.empty() && !in_anon_namespace() &&
                !starts_with(h, "static ")) {
              s.kind = ScopeKind::kFunction;
              s.name = name;
            }
          }
          stack.push_back(s);
          header.clear();
          header_fresh = true;
        } else if (c == '}') {
          if (!stack.empty()) {
            Scope s = stack.back();
            stack.pop_back();
            if (s.kind == ScopeKind::kFunction && !s.has_contract &&
                s.body_lines >= kMinBodyLines) {
              add(out, f, s.header_line, id(),
                  "public entry point '" + s.name +
                      "' asserts no preconditions; add a PFAR_REQUIRE "
                      "(or suppress with a reason)");
            }
            // nested function bodies / blocks count toward the enclosing
            // function's size and contract status
            if (!stack.empty()) {
              for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
                if (it->kind == ScopeKind::kFunction) {
                  it->body_lines += s.body_lines;
                  break;
                }
              }
            }
          }
          header.clear();
          header_fresh = true;
        } else if (c == ';') {
          // Statement/declaration boundary outside braces.
          header.clear();
          header_fresh = true;
        } else {
          header += c;
        }
      }
      header += ' ';
      // Per-line body accounting + contract detection for the innermost
      // function on the stack.
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind != ScopeKind::kFunction) continue;
        if (!trim(l).empty()) ++it->body_lines;
        if (l.find("PFAR_REQUIRE") != std::string::npos ||
            l.find("PFAR_ENSURE") != std::string::npos ||
            l.find("PFAR_INVARIANT") != std::string::npos) {
          it->has_contract = true;
        }
        break;
      }
    }
  }

 private:
  static constexpr int kMinBodyLines = 3;  // skip trivial forwarders

  static bool looks_like_type(const std::string& h) {
    for (const char* kw : {"struct", "class", "union", "enum"}) {
      const std::size_t p = h.find(kw);
      if (p != std::string::npos &&
          (p == 0 || !is_ident_char(h[p - 1])) &&
          (p + std::string(kw).size() >= h.size() ||
           !is_ident_char(h[p + std::string(kw).size()]))) {
        // `enum class Foo {` yes; `struct` in a parameter list of a
        // function header would have '(' before it.
        const std::size_t paren = h.find('(');
        if (paren == std::string::npos || p < paren) return true;
      }
    }
    return false;
  }

  /// Name of the function a definition header defines, or "" if the header
  /// is not a function definition we hold to the contract rule.
  static std::string function_name(const std::string& h) {
    const std::size_t paren = h.find('(');
    if (paren == std::string::npos) return "";
    // `=` before the '(' means an initializer (lambda, function pointer).
    const std::size_t eq = h.find('=');
    if (eq != std::string::npos && eq < paren) return "";
    std::size_t e = paren;
    while (e > 0 && std::isspace(static_cast<unsigned char>(h[e - 1])) != 0)
      --e;
    std::size_t b = e;
    while (b > 0 && (is_ident_char(h[b - 1]) || h[b - 1] == ':' ||
                     h[b - 1] == '~')) {
      --b;
    }
    std::string name = h.substr(b, e - b);
    if (name.empty()) return "";
    for (const char* kw : {"if", "for", "while", "switch", "catch",
                           "return", "sizeof", "alignof", "decltype"}) {
      if (name == kw) return "";
    }
    if (name == "main") return "";
    if (name.find('~') != std::string::npos) return "";       // destructor
    if (name.find("operator") != std::string::npos) return "";
    return name;
  }
};

// ---------------------------------------------------------------------------
// Rule: mutex-naming
// ---------------------------------------------------------------------------

class MutexNaming final : public Rule {
 public:
  std::string_view id() const override { return "mutex-naming"; }
  std::string_view description() const override {
    return "mutexes in src/ must be the annotated util::Mutex "
           "(thread_annotations.hpp) with PFAR_GUARDED_BY on the state "
           "they guard; bare std::mutex is invisible to -Wthread-safety";
  }

  void check(const SourceFile& f, std::vector<Finding>& out) const override {
    if (!starts_with(f.path, "src/")) return;
    if (f.path == "src/util/thread_annotations.hpp") return;  // the wrapper
    for (const char* type :
         {"mutex", "recursive_mutex", "timed_mutex", "recursive_timed_mutex",
          "shared_mutex", "shared_timed_mutex"}) {
      for (const TokenHit& h : find_ident(f, type)) {
        const std::string& l = f.code[h.line];
        if (h.col < 5 || l.compare(h.col - 5, 5, "std::") != 0) continue;
        // `#include <mutex>` lines have no std:: so they never match; a
        // template arg like std::lock_guard<std::mutex> matches and is
        // exactly what must not appear.
        add(out, f, h.line, id(),
            std::string("bare std::") + type +
                "; declare util::Mutex + PFAR_GUARDED_BY so the "
                "thread-safety analysis can see it");
      }
    }
    for (const TokenHit& h : find_ident(f, "condition_variable")) {
      const std::string& l = f.code[h.line];
      if (h.col < 5 || l.compare(h.col - 5, 5, "std::") != 0) continue;
      add(out, f, h.line, id(),
          "std::condition_variable requires a bare std::mutex; use "
          "std::condition_variable_any waiting on util::Mutex");
    }
    // A util::Mutex member in a file with no PFAR_GUARDED_BY at all is a
    // smell: the lock exists but guards nothing the analysis can check.
    bool has_guarded_by = false;
    for (const std::string& l : f.code) {
      if (l.find("PFAR_GUARDED_BY") != std::string::npos) {
        has_guarded_by = true;
        break;
      }
    }
    if (!has_guarded_by) {
      for (const TokenHit& h : find_ident(f, "Mutex")) {
        const std::string& l = f.code[h.line];
        // Declaration shape: `Mutex name;` / `util::Mutex name;`.
        std::size_t p = h.col + 5;
        while (p < l.size() &&
               std::isspace(static_cast<unsigned char>(l[p])) != 0) {
          ++p;
        }
        std::size_t e = p;
        while (e < l.size() && is_ident_char(l[e])) ++e;
        if (e > p && e < l.size() && l[e] == ';') {
          add(out, f, h.line, id(),
              "util::Mutex member but no PFAR_GUARDED_BY anywhere in this "
              "file; annotate the state the lock protects");
        }
      }
    }
  }
};

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::string normalize_path(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path abs = fs::weakly_canonical(p, ec);
  if (ec) abs = fs::absolute(p, ec);
  fs::path rel = fs::relative(abs, root, ec);
  std::string s = (ec || rel.empty() || *rel.begin() == "..")
                      ? abs.generic_string()
                      : rel.generic_string();
  return s;
}

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h";
}

std::optional<SourceFile> load_file(const fs::path& p, const fs::path& root) {
  std::ifstream in(p);
  if (!in) return std::nullopt;
  SourceFile f;
  f.path = normalize_path(p, root);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    f.raw.push_back(line);
  }
  lex_file(f);
  return f;
}

/// Minimal extraction of every "file" value from compile_commands.json.
std::vector<std::string> compile_db_files(const fs::path& db) {
  std::ifstream in(db);
  if (!in) return {};
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  std::size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    while (pos < text.size() &&
           (std::isspace(static_cast<unsigned char>(text[pos])) != 0 ||
            text[pos] == ':')) {
      ++pos;
    }
    if (pos >= text.size() || text[pos] != '"') continue;
    ++pos;
    std::string value;
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      value += text[pos++];
    }
    files.push_back(value);
  }
  return files;
}

/// First-party #include "..." targets of a file, resolved against the
/// including file's directory and the repo's src/ root.
std::vector<fs::path> local_includes(const SourceFile& f, const fs::path& file,
                                     const fs::path& root) {
  std::vector<fs::path> found;
  for (const std::string& line : f.raw) {
    const std::string t = trim(line);
    if (!starts_with(t, "#include")) continue;
    const std::size_t a = t.find('"');
    if (a == std::string::npos) continue;
    const std::size_t b = t.find('"', a + 1);
    if (b == std::string::npos) continue;
    const std::string target = t.substr(a + 1, b - a - 1);
    for (const fs::path& base :
         {file.parent_path(), root / "src", root / "bench", root / "tools"}) {
      std::error_code ec;
      const fs::path cand = base / target;
      if (fs::exists(cand, ec) && !ec) {
        found.push_back(cand);
        break;
      }
    }
  }
  return found;
}

struct Options {
  std::vector<std::string> paths;
  std::string compile_db;
  std::string root = ".";
  std::vector<std::string> allowlists;
  std::set<std::string> only_rules;
  bool list_rules = false;
};

int usage(std::ostream& os, int code) {
  os << "usage: pfar_lint [--compile-db FILE] [--root DIR]\n"
        "                 [--allowlist FILE]... [--rule ID]... [--list-rules]\n"
        "                 [path...]\n"
        "Lints the pfar tree's determinism/concurrency law "
        "(docs/static_analysis.md).\n"
        "Paths are files or directories; directories recurse over "
        "*.cpp/*.hpp\n"
        "(skipping lint_fixtures). With --compile-db, lints every TU in "
        "the\n"
        "compile database plus first-party headers they include.\n"
        "Exit: 0 clean, 1 findings, 2 usage/config error.\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "pfar_lint: " << flag << " needs a value\n";
        std::exit(usage(std::cerr, 2));
      }
      return argv[++i];
    };
    if (arg == "--compile-db") {
      opt.compile_db = need_value("--compile-db");
    } else if (arg == "--root") {
      opt.root = need_value("--root");
    } else if (arg == "--allowlist") {
      opt.allowlists.push_back(need_value("--allowlist"));
    } else if (arg == "--rule") {
      opt.only_rules.insert(need_value("--rule"));
    } else if (arg == "--list-rules") {
      opt.list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      return usage(std::cout, 0);
    } else if (starts_with(arg, "--")) {
      std::cerr << "pfar_lint: unknown option '" << arg << "'\n";
      return usage(std::cerr, 2);
    } else {
      opt.paths.push_back(arg);
    }
  }

  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<NoUnorderedIteration>());
  rules.push_back(std::make_unique<NoWallclockInSim>());
  rules.push_back(std::make_unique<NoPointerOrdering>());
  rules.push_back(std::make_unique<ContractCoverage>());
  rules.push_back(std::make_unique<MutexNaming>());

  if (opt.list_rules) {
    for (const auto& r : rules) {
      std::cout << r->id() << "\n    " << r->description() << "\n";
    }
    return 0;
  }

  std::set<std::string> known_rules;
  for (const auto& r : rules) known_rules.insert(std::string(r->id()));
  for (const std::string& id : opt.only_rules) {
    if (known_rules.count(id) == 0) {
      std::cerr << "pfar_lint: unknown rule '" << id
                << "' (see --list-rules)\n";
      return 2;
    }
  }

  std::error_code ec;
  const fs::path root = fs::weakly_canonical(opt.root, ec);
  if (ec || !fs::is_directory(root)) {
    std::cerr << "pfar_lint: --root '" << opt.root
              << "' is not a directory\n";
    return 2;
  }

  // Assemble the file set.
  std::vector<fs::path> queue;
  if (!opt.compile_db.empty()) {
    if (!fs::exists(opt.compile_db)) {
      std::cerr << "pfar_lint: compile database '" << opt.compile_db
                << "' not found\n";
      return 2;
    }
    for (const std::string& file : compile_db_files(opt.compile_db)) {
      queue.emplace_back(file);
    }
    if (queue.empty()) {
      std::cerr << "pfar_lint: no entries in '" << opt.compile_db << "'\n";
      return 2;
    }
  }
  for (const std::string& p : opt.paths) {
    if (!fs::exists(p)) {
      std::cerr << "pfar_lint: path '" << p << "' does not exist\n";
      return 2;
    }
    if (fs::is_directory(p)) {
      // Skip the deliberately-violating test fixtures — unless the walk was
      // explicitly pointed inside them (tests/lint_tool_test.cpp does).
      const bool fixtures_requested =
          fs::weakly_canonical(p, ec).generic_string().find("lint_fixtures") !=
          std::string::npos;
      for (fs::recursive_directory_iterator it(p), end; it != end; ++it) {
        const std::string s = it->path().generic_string();
        if (!fixtures_requested &&
            s.find("lint_fixtures") != std::string::npos) {
          continue;
        }
        if (it->is_regular_file() && lintable_extension(it->path())) {
          queue.push_back(it->path());
        }
      }
    } else {
      queue.push_back(p);
    }
  }
  if (queue.empty()) {
    std::cerr << "pfar_lint: nothing to lint (give paths or --compile-db)\n";
    return 2;
  }

  Allowlist allow;
  for (const std::string& al : opt.allowlists) {
    std::ifstream in(al);
    if (!in) {
      std::cerr << "pfar_lint: cannot read allowlist '" << al << "'\n";
      return 2;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::string t = trim(line);
      if (t.empty() || t[0] == '#') continue;
      std::istringstream fields(t);
      std::string prefix, rule, reason;
      fields >> prefix >> rule;
      std::getline(fields, reason);
      if (prefix.empty() || rule.empty() || trim(reason).empty()) {
        std::cerr << "pfar_lint: " << al << ":" << lineno
                  << ": allowlist lines are '<path-prefix> <rule> "
                     "<reason>'\n";
        return 2;
      }
      if (rule != "*" && known_rules.count(rule) == 0) {
        std::cerr << "pfar_lint: " << al << ":" << lineno
                  << ": unknown rule '" << rule << "'\n";
        return 2;
      }
      allow.entries.push_back(Allowlist::Entry{prefix, rule});
    }
  }

  // Lint, following first-party includes once each.
  std::set<std::string> seen;
  std::vector<Finding> findings;
  std::size_t files_linted = 0;
  std::size_t suppressed = 0;
  while (!queue.empty()) {
    const fs::path p = queue.back();
    queue.pop_back();
    if (!lintable_extension(p)) continue;
    auto file = load_file(p, root);
    if (!file) continue;  // e.g. generated TU outside the tree
    if (!seen.insert(file->path).second) continue;
    ++files_linted;
    if (!opt.compile_db.empty()) {
      for (const fs::path& inc : local_includes(*file, p, root)) {
        queue.push_back(inc);
      }
    }
    const Suppressions sup = scan_suppressions(*file, known_rules);
    for (const Finding& m : sup.malformed) findings.push_back(m);
    std::vector<Finding> local;
    for (const auto& r : rules) {
      if (!opt.only_rules.empty() &&
          opt.only_rules.count(std::string(r->id())) == 0) {
        continue;
      }
      r->check(*file, local);
    }
    for (Finding& fi : local) {
      const std::size_t line_idx =
          fi.line > 0 ? static_cast<std::size_t>(fi.line - 1) : 0;
      if (sup.covers(fi, line_idx) || allow.covers(fi)) {
        ++suppressed;
        continue;
      }
      findings.push_back(std::move(fi));
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& fi : findings) {
    std::cout << fi.file << ":" << fi.line << ": [" << fi.rule << "] "
              << fi.message << "\n";
  }
  std::cout << "pfar_lint: " << findings.size() << " finding(s) in "
            << files_linted << " file(s), " << suppressed
            << " suppressed\n";
  return findings.empty() ? 0 : 1;
}
